"""World assembly.

``build_world`` turns a :class:`~repro.config.ScenarioConfig` into a fully
wired synthetic Internet: topology, IPv6 overlay, addressing, DNS, site
catalog, servers, vantage points, and the per-vantage monitoring
environments (resolver + HTTP client + list feeds) the monitoring tool
consumes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace

from ..bgp.routing import PathOracle, Route
from ..config import ScenarioConfig
from ..dataplane.clock import SimulationClock
from ..dataplane.path import ForwardingPath
from ..dataplane.performance import ThroughputModel
from ..dns.records import RecordType, ResourceRecord
from ..dns.resolver import Resolver
from ..dns.zone import ZoneStore
from ..errors import ConfigError
from ..faults.plan import FaultPlan, ServerFault
from ..monitor.vantage import VantageKind, VantagePoint
from ..net.addresses import Address, AddressFamily
from ..net.nat64 import Nat64Gateway, extract_ipv4, is_nat64_mapped
from ..net.tunnels import TunnelKind
from ..obs import get_logger, metrics, span
from ..rng import RngStreams
from ..sites.catalog import Site, SiteCatalog, build_catalog
from ..topology.asys import ASType
from ..topology.dualstack import (
    DualStackTopology,
    deploy_ipv6,
    select_nat64_gateways,
    valley_free_distances,
)
from ..topology.generator import Topology, generate_topology
from ..web.http import ContentEndpoint, HttpClient
from ..monitor.tool import VantageEnvironment

#: The paper's six vantage points (Table 1): name, location, start offset
#: (as a fraction of the campaign), AS_PATH availability, white-listing,
#: type, and whether external site inputs are fed in (Penn's DNS cache).
VANTAGE_TEMPLATES = (
    ("Penn", "Philadelphia, PA", 0.00, True, False, VantageKind.ACADEMIC, True),
    ("Comcast", "Denver, CO", 0.35, True, False, VantageKind.COMMERCIAL, False),
    ("UPCB", "Netherlands", 0.40, True, True, VantageKind.COMMERCIAL, False),
    ("Tsinghua", "China", 0.45, False, False, VantageKind.ACADEMIC, False),
    ("LU", "Great Britain", 0.50, True, False, VantageKind.ACADEMIC, False),
    ("Go6", "Slovenia", 0.55, False, False, VantageKind.COMMERCIAL, False),
)


@dataclass
class World:
    """A fully wired scenario, ready to be monitored."""

    config: ScenarioConfig
    rngs: RngStreams
    topology: Topology
    dualstack: DualStackTopology
    catalog: SiteCatalog
    model: ThroughputModel
    zones: ZoneStore
    clock: SimulationClock
    vantages: list[VantagePoint]
    oracle: PathOracle
    #: the scenario's fault schedule; None when fault injection is off.
    faults: FaultPlan | None = None
    #: NAT64 translators (empty when the DNS64/NAT64 axis is off).
    nat64_gateways: tuple[Nat64Gateway, ...] = ()
    #: per-site addresses by family.
    _addresses: dict[tuple[int, AddressFamily], Address] = field(
        default_factory=dict, repr=False
    )
    _path_cache: dict[tuple[int, int, AddressFamily, bool], ForwardingPath | None] = (
        field(default_factory=dict, repr=False)
    )
    _owner_cache: dict[Address, int] = field(default_factory=dict, repr=False)
    _endpoint_cache: dict[tuple[int, AddressFamily, int], ContentEndpoint] = field(
        default_factory=dict, repr=False
    )
    #: per-gateway valley-free IPv4 distances (the hidden translated leg).
    _nat64_distances: dict[int, dict[int, int]] = field(
        default_factory=dict, repr=False
    )
    #: vantage ASN -> chosen gateway (None when none is reachable).
    _vantage_gateway: dict[int, Nat64Gateway | None] = field(
        default_factory=dict, repr=False
    )
    _translated_cache: dict[tuple[int, int], ForwardingPath | None] = field(
        default_factory=dict, repr=False
    )
    _zone_round: int = -1
    _publisher: "ZonePublisher | None" = field(default=None, repr=False)

    # -- addressing -------------------------------------------------------------

    def address_of(self, site: Site, family: AddressFamily) -> Address:
        key = (site.site_id, family)
        cached = self._addresses.get(key)
        if cached is not None:
            return cached
        owner = site.dest_asn(family)
        prefix = self.dualstack.allocator.prefix_of(owner, family)
        host = site.site_id + 1
        if host > prefix.host_mask:
            raise ConfigError(
                f"site id {site.site_id} exceeds host space of {prefix}; "
                "shrink the site universe or widen allocations"
            )
        address = prefix.address(host)
        self._addresses[key] = address
        return address

    # -- DNS lifecycle ------------------------------------------------------------

    def advance_to_round(self, round_idx: int) -> None:
        """Publish DNS records that exist as of ``round_idx``.

        A records for every site are published up front; each site's AAAA
        record appears at its adoption round.  Idempotent and monotone.
        Delegates to a :class:`ZonePublisher` over the shared ``zones``
        store; campaign shards create their own publishers instead so
        vantage points can execute independently.
        """
        if self._publisher is None:
            self._publisher = ZonePublisher(
                world=self, store=self.zones, published_round=self._zone_round
            )
        self._publisher.advance_to(round_idx)
        self._zone_round = self._publisher.published_round

    def zone_snapshot(self, round_idx: int) -> ZoneStore:
        """A standalone ZoneStore reflecting DNS as of ``round_idx``.

        The live store mutates as the campaign advances; experiments that
        revisit a past round (the World IPv6 Day campaign monitors *at*
        the event round) resolve against a snapshot instead.
        """
        store = ZoneStore()
        zone = store.zone_for("example.")
        for site in self.catalog.sites:
            zone.add(
                ResourceRecord(
                    name=site.name,
                    rtype=RecordType.A,
                    value=self.address_of(site, AddressFamily.IPV4),
                )
            )
            if site.v6_accessible_at(round_idx):
                zone.add(
                    ResourceRecord(
                        name=site.name,
                        rtype=RecordType.AAAA,
                        value=self.address_of(site, AddressFamily.IPV6),
                    )
                )
        return store

    # -- per-vantage wiring ---------------------------------------------------------

    def forwarding_path(
        self, vantage_asn: int, owner_asn: int, family: AddressFamily, alternate: bool
    ) -> ForwardingPath | None:
        """Cached forwarding path from a vantage AS to an owner AS.

        6to4 owners are special: their 2002::/x prefix is announced by the
        *relay* AS (RFC 3056 routing), so the observable AS path ends at
        the relay while forwarding continues over the hidden IPv4 detour
        to the client - the BGP view under-reports both the destination AS
        and the hop count, exactly the effect the paper attributes to
        tunnels.
        """
        key = (vantage_asn, owner_asn, family, alternate)
        if key in self._path_cache:
            return self._path_cache[key]
        target = owner_asn
        six_to_four = None
        if family is AddressFamily.IPV6:
            tunnel = self.dualstack.tunnel_of(owner_asn)
            if tunnel is not None and tunnel.kind is TunnelKind.SIX_TO_FOUR:
                six_to_four = tunnel
                target = tunnel.relay_asn
        route: Route | None
        if alternate:
            route = self.oracle.alternate_route(vantage_asn, target, family)
            if route is None:
                route = self.oracle.detour_route(vantage_asn, target, family)
            if route is None:
                route = self.oracle.route(vantage_asn, target, family)
        else:
            route = self.oracle.route(vantage_asn, target, family)
        if route is None:
            path = None
        else:
            path = ForwardingPath.from_as_path(self.dualstack, route.path, family)
            if six_to_four is not None:
                path = replace(path, tunnels=path.tunnels + (six_to_four,))
        self._path_cache[key] = path
        return path

    def content_endpoint(
        self, name: str, family: AddressFamily, round_idx: int
    ) -> ContentEndpoint:
        """What serves ``name`` over ``family`` at ``round_idx`` (cached)."""
        site = self.catalog.by_name(name)
        key = (site.site_id, family, round_idx)
        cached = self._endpoint_cache.get(key)
        if cached is not None:
            return cached
        if family is AddressFamily.IPV4 and site.cdn is not None:
            server = site.cdn.provider.edge_server()
        else:
            server = site.server
        speed = server.speed(family) * site.behaviour.multiplier(family, round_idx)
        endpoint = ContentEndpoint(
            site_id=site.site_id,
            server_asn=server.asn,
            server_speed=speed,
            page_bytes=site.page.size(family),
        )
        self._endpoint_cache[key] = endpoint
        return endpoint

    def owner_of_address(self, address: Address) -> int:
        """Cached address-to-owner-AS lookup (one hot path per download).

        NAT64-mapped addresses (64:ff9b::/96) are intercepted before the
        allocator: no AS allocates out of the well-known prefix, so the
        owner of a synthesized AAAA is the owner of the embedded IPv4
        address — the AS the translated flow actually lands in.
        """
        owner = self._owner_cache.get(address)
        if owner is None:
            if is_nat64_mapped(address):
                owner = self.dualstack.allocator.owner_of_address(
                    extract_ipv4(address)
                )
            else:
                owner = self.dualstack.allocator.owner_of_address(address)
            self._owner_cache[address] = owner
        return owner

    # -- NAT64 -----------------------------------------------------------------

    def nat64_gateway_for(self, vantage_asn: int) -> Nat64Gateway | None:
        """The NAT64 gateway a vantage's translated traffic crosses.

        Deterministic: the gateway with the shortest apparent IPv6 route
        from the vantage (ties to the lowest ASN), memoised per vantage.
        ``None`` when no gateway is deployed or none is v6-reachable.
        """
        if vantage_asn in self._vantage_gateway:
            return self._vantage_gateway[vantage_asn]
        best: Nat64Gateway | None = None
        best_key: tuple[int, int] | None = None
        for gateway in self.nat64_gateways:
            route = self.oracle.route(
                vantage_asn, gateway.gateway_asn, AddressFamily.IPV6
            )
            if route is None:
                continue
            key = (len(route.path), gateway.gateway_asn)
            if best_key is None or key < best_key:
                best, best_key = gateway, key
        self._vantage_gateway[vantage_asn] = best
        return best

    def translated_path(
        self, vantage_asn: int, owner_asn: int
    ) -> ForwardingPath | None:
        """The NAT64-translated forwarding path to an IPv4 owner (cached).

        The apparent IPv6 AS path runs from the vantage to the gateway
        announcing 64:ff9b::/96; the IPv4 leg from the gateway to the
        real destination is hidden from BGP, sized by the valley-free
        IPv4 distance — the same under-reporting tunnels exhibit.
        """
        key = (vantage_asn, owner_asn)
        if key in self._translated_cache:
            return self._translated_cache[key]
        path: ForwardingPath | None = None
        gateway = self.nat64_gateway_for(vantage_asn)
        if gateway is not None:
            route = self.oracle.route(
                vantage_asn, gateway.gateway_asn, AddressFamily.IPV6
            )
            if route is not None:
                base = ForwardingPath.from_as_path(
                    self.dualstack, route.path, AddressFamily.IPV6
                )
                distances = self._nat64_distances.get(gateway.gateway_asn)
                if distances is None:
                    distances = valley_free_distances(
                        self.topology, gateway.gateway_asn
                    )
                    self._nat64_distances[gateway.gateway_asn] = distances
                path = replace(
                    base,
                    translated=True,
                    translation_hidden_hops=max(
                        1, distances.get(owner_asn, 3)
                    ),
                    translation_quality=gateway.translation_quality,
                )
        self._translated_cache[key] = path
        return path

    def _path_provider(self, vantage_asn: int, dns64: bool = False):
        gateway = self.nat64_gateway_for(vantage_asn) if dns64 else None

        def provide(
            owner_asn: int, site_id: int, family: AddressFamily, round_idx: int
        ) -> ForwardingPath | None:
            site = self.catalog.site(site_id)
            if (
                dns64
                and family is AddressFamily.IPV6
                and not site.v6_accessible_at(round_idx)
            ):
                # The AAAA this connection resolved to was DNS64-
                # synthesized (the site publishes no real AAAA yet), so
                # forwarding crosses the NAT64 gateway.
                if (
                    gateway is not None
                    and self.faults is not None
                    and self.faults.nat64_outage(gateway.gateway_asn, round_idx)
                ):
                    # The translator is down this round: every
                    # synthesized-AAAA connection through it fails.
                    _NAT64_OUTAGES.inc()
                    return None
                return self.translated_path(vantage_asn, owner_asn)
            alternate = site.behaviour.path_changes_at(family, round_idx)
            path = self.forwarding_path(vantage_asn, owner_asn, family, alternate)
            if (
                path is not None
                and path.tunnels
                and self.faults is not None
                and self.faults.tunnel_broken(owner_asn, round_idx)
            ):
                # The destination's transition tunnel is down this round:
                # the site is unreachable over IPv6 from everywhere, like
                # the flapping 6to4 relays of the measurement period.
                return None
            return path

        return provide

    # -- fault hooks -----------------------------------------------------------

    def dns_fault_check(self, clock: SimulationClock | None = None):
        """Resolver fault hook bound to this world's fault plan (or None).

        ``clock`` maps query timestamps to round indices; the World IPv6
        Day campaign passes its 30-minute clock, everything else uses the
        weekly campaign clock.
        """
        plan = self.faults
        if plan is None:
            return None
        the_clock = clock if clock is not None else self.clock

        def check(
            name: str, family: AddressFamily, now: float, attempt: int
        ) -> float | None:
            round_idx = the_clock.round_of_time(now)
            if plan.dns_failure(name, family, round_idx, attempt):
                return plan.config.dns_timeout_seconds
            return None

        return check

    def server_fault_hook(self):
        """HTTP-client fault hook bound to this world's fault plan (or None)."""
        plan = self.faults
        if plan is None:
            return None

        def hook(
            site_id: int, family: AddressFamily, round_idx: int, fault_key: str
        ) -> ServerFault | None:
            multiplier = 1.0
            if (
                family is AddressFamily.IPV6
                and self.catalog.site(site_id).server.v6_impaired
            ):
                multiplier = plan.config.impaired_fault_multiplier
            return plan.server_fault(
                site_id, family, round_idx, fault_key, multiplier
            )

        return hook

    def server_fault_hook_batch(self):
        """Batched HTTP-client fault hook over this world's plan (or None).

        Same per-coordinate decisions as :meth:`server_fault_hook`, but
        one call covers a whole span of attempt keys (a probe's retry
        budget, a chunk of loop attempts) through
        :meth:`FaultPlan.server_fault_batch` — the batched monitor's
        fault lookups stay on the digest spine without a Python call per
        GET.
        """
        plan = self.faults
        if plan is None:
            return None

        def hook_batch(
            site_id: int,
            family: AddressFamily,
            round_idx: int,
            fault_keys: list[str],
        ) -> list[ServerFault | None]:
            multiplier = 1.0
            if (
                family is AddressFamily.IPV6
                and self.catalog.site(site_id).server.v6_impaired
            ):
                multiplier = plan.config.impaired_fault_multiplier
            return plan.server_fault_batch(
                site_id, family, round_idx, fault_keys, multiplier
            )

        return hook_batch

    def environment_for(
        self, vantage: VantagePoint, zones: ZoneStore | None = None
    ) -> VantageEnvironment:
        """Build the monitoring environment of one vantage point.

        ``zones`` overrides the resolver's zone store; campaign shards
        pass their own :class:`ZonePublisher` store so each vantage can
        advance the DNS timeline independently of the others.
        """
        dns64_on = self.config.dns64.applies_to(vantage.name)
        if dns64_on:
            # Translated connections reach IPv4 content: the synthesized
            # AAAA embeds the site's A record, so a "v6" fetch of a
            # v4-only site serves the IPv4 page from the IPv4 server.
            def content_lookup(
                name: str, family: AddressFamily, round_idx: int
            ) -> ContentEndpoint:
                if family is AddressFamily.IPV6 and not self.catalog.by_name(
                    name
                ).v6_accessible_at(round_idx):
                    return self.content_endpoint(
                        name, AddressFamily.IPV4, round_idx
                    )
                return self.content_endpoint(name, family, round_idx)

        else:
            content_lookup = self.content_endpoint
        client = HttpClient(
            model=self.model,
            content_lookup=content_lookup,
            path_provider=self._path_provider(vantage.asn, dns64_on),
            owner_lookup=self.owner_of_address,
            fault_hook=self.server_fault_hook(),
            fault_hook_batch=self.server_fault_hook_batch(),
        )
        n_rounds = self.config.campaign.n_rounds
        external_ids = self.external_site_ids()

        def site_list(round_idx: int) -> list[str]:
            return [
                self.catalog.site(sid).name
                for sid in self.catalog.ranking.list_at_round(round_idx)
            ]

        def external_inputs(round_idx: int) -> list[str]:
            if not vantage.external_inputs or not external_ids:
                return []
            # Trickle the external pool in evenly over the campaign.
            per_round = max(1, len(external_ids) // max(1, n_rounds))
            upto = min(len(external_ids), per_round * (round_idx + 1))
            return [self.catalog.site(sid).name for sid in external_ids[:upto]]

        return VantageEnvironment(
            resolver=Resolver(
                store=zones if zones is not None else self.zones,
                fault_check=self.dns_fault_check(),
                dns64=dns64_on,
            ),
            client=client,
            clock=self.clock,
            site_list=site_list,
            external_inputs=external_inputs,
            site_id_of=lambda name: self.catalog.by_name(name).site_id,
            record_transitions=self.config.dns64.enabled,
        )

    def external_site_ids(self) -> list[int]:
        """Sites outside the ranked universe (Penn's DNS-cache feed)."""
        return list(
            range(self.catalog.ranking.universe_size, len(self.catalog.sites))
        )

    def monitor_rng(self, vantage: VantagePoint) -> random.Random:
        return self.rngs.stream(f"monitor:{vantage.name}")


@dataclass
class ZonePublisher:
    """Publishes site DNS records round by round into one zone store.

    The DNS timeline — A records up front, each AAAA at its site's
    adoption round, event-day records added and removed around World
    IPv6 Day — is a pure function of the catalog, so any number of
    publishers over the same world expose identical zone contents at
    the same round.  That is what lets campaign shards (one vantage
    each, possibly in different processes) resolve against private
    stores yet observe exactly the DNS the shared store would have
    shown.
    """

    world: World
    store: ZoneStore = field(default_factory=ZoneStore)
    #: last round whose records have been published (-1 = nothing yet).
    published_round: int = -1
    #: lazily-built index: round → sites whose AAAA state can change there
    #: (adoption round, event day, day after the event).  Advancing a
    #: round then touches the handful of transitioning sites instead of
    #: re-checking the whole catalog.
    _events_by_round: dict[int, list] | None = field(
        default=None, repr=False, compare=False
    )

    def _transition_candidates(self, start: int, round_idx: int) -> list:
        """Sites whose v6 accessibility may differ across [start, round_idx]."""
        if self._events_by_round is None:
            index: dict[int, list] = {}
            for site in self.world.catalog.sites:
                rounds = set()
                if site.adoption_round is not None:
                    rounds.add(site.adoption_round)
                if site.w6d_event_round is not None:
                    rounds.add(site.w6d_event_round)
                    rounds.add(site.w6d_event_round + 1)
                for r in rounds:
                    index.setdefault(r, []).append(site)
            self._events_by_round = index
        seen: set[int] = set()
        candidates = []
        for r in range(start, round_idx + 1):
            for site in self._events_by_round.get(r, ()):
                if site.site_id not in seen:
                    seen.add(site.site_id)
                    candidates.append(site)
        return candidates

    def advance_to(self, round_idx: int) -> None:
        """Publish records that exist as of ``round_idx`` (idempotent)."""
        if round_idx <= self.published_round:
            return
        world = self.world
        zone = self.store.zone_for("example.")
        start = self.published_round + 1
        if self.published_round < 0:
            for site in world.catalog.sites:
                zone.add(
                    ResourceRecord(
                        name=site.name,
                        rtype=RecordType.A,
                        value=world.address_of(site, AddressFamily.IPV4),
                    )
                )
        for site in self._transition_candidates(start, round_idx):
            published = site.v6_accessible_at(self.published_round) if (
                self.published_round >= 0
            ) else False
            target = site.v6_accessible_at(round_idx)
            # Event-day-only AAAA records may need an add *and* a remove
            # within the advanced window (e.g. jumping past the event).
            event = site.w6d_event_round
            transient_event = (
                event is not None
                and start <= event <= round_idx
                and not target
                and not published
            )
            if target and not published:
                zone.add(
                    ResourceRecord(
                        name=site.name,
                        rtype=RecordType.AAAA,
                        value=world.address_of(site, AddressFamily.IPV6),
                    )
                )
            elif published and not target:
                zone.remove(site.name, RecordType.AAAA)
            elif transient_event:
                # The event came and went entirely inside this window; the
                # zone ends up unchanged.
                pass
        self.published_round = round_idx


def _vantage_candidates(topo: DualStackTopology) -> list[int]:
    """ASes suitable to host a monitor: v6-enabled edge ASes, no tunnel.

    The paper's vantage points all had "high quality native IPv6", so
    tunneled ASes are excluded.
    """
    out = []
    for asn in topo.asn_list:
        asys = topo.base.ases[asn]
        if asys.type not in (ASType.STUB, ASType.CONTENT):
            continue
        if asn not in topo.v6_enabled or topo.tunnel_of(asn) is not None:
            continue
        out.append(asn)
    return out


def _v6_richness(topo: DualStackTopology, asn: int) -> int:
    """Proxy for how well an AS's neighbourhood peers over IPv6.

    Counts the v6 peering adjacencies of the AS and of its providers: the
    richer this neighbourhood, the more often the v6 path matches the v4
    path (more SP destinations), which is what differentiated vantage
    points like UPCB from Penn in the paper.
    """
    v6 = AddressFamily.IPV6
    score = len(topo.peers_of(asn, v6))
    for provider in topo.providers_of(asn, v6):
        score += len(topo.peers_of(provider, v6))
    return score


def select_vantage_ases(
    topo: DualStackTopology, count: int, rng: random.Random
) -> list[int]:
    """Pick ``count`` diverse vantage ASes, poorest v6 neighbourhood first.

    The returned order matches :data:`VANTAGE_TEMPLATES`: the first slot
    (Penn, which saw mostly DP destinations) gets the AS with the weakest
    v6 peering neighbourhood; later slots get progressively richer ones.
    """
    candidates = _vantage_candidates(topo)
    if len(candidates) < count:
        # Tiny scaled-down worlds may lack natively-connected edges; relax
        # to any v6-enabled edge AS before giving up.
        fallback = [
            asn
            for asn in topo.asn_list
            if topo.base.ases[asn].type in (ASType.STUB, ASType.CONTENT)
            and asn in topo.v6_enabled
            and asn not in candidates
        ]
        candidates = candidates + fallback
    if len(candidates) < count:
        raise ConfigError(
            f"only {len(candidates)} vantage-capable ASes; need {count} - "
            "raise v6 enablement probabilities or the topology size"
        )
    ranked = sorted(candidates, key=lambda asn: (_v6_richness(topo, asn), asn))
    # Spread selections over the richness range, regions permitting.
    picks: list[int] = []
    used_regions: set[int] = set()
    step = max(1, len(ranked) // count)
    cursor = 0
    for slot in range(count):
        window = ranked[cursor : cursor + step] or ranked[-step:]
        preferred = [
            asn
            for asn in window
            if topo.base.ases[asn].region not in used_regions
        ]
        choice = rng.choice(preferred or window)
        picks.append(choice)
        used_regions.add(topo.base.ases[choice].region)
        cursor += step
    return picks


def build_vantages(
    topo: DualStackTopology, n_rounds: int, rng: random.Random
) -> list[VantagePoint]:
    """Instantiate the paper's six vantage points on the topology."""
    ases = select_vantage_ases(topo, len(VANTAGE_TEMPLATES), rng)
    vantages = []
    for (name, location, start_frac, as_path, wl, kind, ext), asn in zip(
        VANTAGE_TEMPLATES, ases
    ):
        vantages.append(
            VantagePoint(
                name=name,
                location=location,
                asn=asn,
                start_round=int(start_frac * n_rounds),
                as_path_available=as_path,
                white_listed=wl,
                kind=kind,
                external_inputs=ext,
            )
        )
    return vantages


_LOG = get_logger("core.world")
#: translated connections refused because the gateway was down (module
#: cached: ``obs`` resets metrics in place).
_NAT64_OUTAGES = metrics.counter("faults.nat64_outages")


def build_world(config: ScenarioConfig) -> World:
    """Assemble the full scenario described by ``config``."""
    config.validate()
    rngs = RngStreams(config.seed)
    with span("world.build", seed=config.seed):
        with span("world.topology", n_ases=config.topology.n_ases):
            topology = generate_topology(config.topology, rngs.stream("topology"))
        with span("world.dualstack"):
            dualstack = deploy_ipv6(
                topology, config.dualstack, rngs.stream("dualstack")
            )
        faults = (
            FaultPlan(config.faults, config.seed) if config.faults.active else None
        )
        model = ThroughputModel(config.performance, rngs, faults=faults)
        n_rounds = config.campaign.n_rounds
        with span("world.catalog", n_sites=config.sites.n_sites):
            catalog = build_catalog(
                config.sites,
                config.adoption,
                dualstack,
                model,
                n_rounds=n_rounds,
                rng=rngs.stream("sites"),
            )
        with span("world.vantages"):
            vantages = build_vantages(dualstack, n_rounds, rngs.stream("vantages"))
            oracle = PathOracle(dualstack, sources=[v.asn for v in vantages])
        nat64_gateways: tuple[Nat64Gateway, ...] = ()
        if config.dns64.enabled:
            gateway_asns = select_nat64_gateways(
                dualstack, config.dns64.n_gateways, rngs.stream("nat64")
            )
            nat64_gateways = tuple(
                Nat64Gateway(
                    gateway_asn=asn,
                    translation_quality=config.dns64.translation_quality,
                )
                for asn in gateway_asns
            )
        world = World(
            config=config,
            rngs=rngs,
            topology=topology,
            dualstack=dualstack,
            catalog=catalog,
            model=model,
            zones=ZoneStore(),
            clock=SimulationClock.weekly(),
            vantages=vantages,
            oracle=oracle,
            faults=faults,
            nat64_gateways=nat64_gateways,
        )
    metrics.gauge("world.ases").set(len(topology.ases))
    metrics.gauge("world.sites").set(len(catalog.sites))
    metrics.gauge("world.v6_enabled_ases").set(len(dualstack.v6_enabled))
    _LOG.info(
        "world built",
        extra={
            "seed": config.seed,
            "ases": len(topology.ases),
            "v6_ases": len(dualstack.v6_enabled),
            "sites": len(catalog.sites),
            "vantages": len(vantages),
        },
    )
    return world
