"""High-level API: build a synthetic dual-stack Internet and run campaigns.

This is the package most users need::

    from repro.core import build_world, run_campaign
    from repro.config import default_config

    world = build_world(default_config())
    result = run_campaign(world)

``result.repository`` then feeds every analysis in :mod:`repro.analysis`
and every experiment in :mod:`repro.experiments`.
"""

from .world import World, build_world
from .campaign import CampaignResult, run_campaign, run_world_ipv6_day

__all__ = [
    "World",
    "build_world",
    "CampaignResult",
    "run_campaign",
    "run_world_ipv6_day",
]
