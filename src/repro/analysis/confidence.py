"""Cross-round confidence screening.

A site is *kept* for analysis only when, for both families, its per-round
average speeds (i) number at least ``min_rounds``, (ii) are stationary
(no sharp step, no steady trend), and (iii) have a 95% confidence
interval within 10% of their mean.  Sites failing any criterion are
removed; the failure is labelled with the first cause found, in the
paper's Table 3 vocabulary: insufficient samples, step up/down, trend
up/down — plus an honest ``UNSTABLE`` label for CI failures with no
identifiable cause (the paper folds these into its transition columns).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..config import AnalysisConfig, MonitorConfig
from ..data.columnar import columnar_view
from ..data.query import converged_speeds, download_rounds, path_change_rounds
from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily
from ..obs import metrics, span
from ..stats.intervals import t_confidence_interval
from ..stats.medianfilter import detect_step
from ..stats.regression import detect_trend

#: How close (in rounds) a path change must be to a step to call the step
#: path-induced.
PATH_CHANGE_WINDOW = 2


class RemovalReason(Enum):
    """Why a site failed the confidence target (Table 3 columns)."""

    INSUFFICIENT_SAMPLES = "insufficient"
    STEP_UP = "step_up"
    STEP_DOWN = "step_down"
    TREND_UP = "trend_up"
    TREND_DOWN = "trend_down"
    UNSTABLE = "unstable"

    @property
    def is_step(self) -> bool:
        return self in (RemovalReason.STEP_UP, RemovalReason.STEP_DOWN)

    @property
    def is_trend(self) -> bool:
        return self in (RemovalReason.TREND_UP, RemovalReason.TREND_DOWN)


@dataclass(frozen=True)
class SiteScreening:
    """The screening outcome for one site at one vantage point."""

    site_id: int
    kept: bool
    reason: RemovalReason | None = None
    #: which family triggered the removal.
    reason_family: AddressFamily | None = None
    #: monitoring round at which a step was located (steps only).
    step_round: int | None = None
    #: whether a recorded path change coincides with the step.
    step_from_path_change: bool = False


def _check_family(
    db: MeasurementDatabase,
    site_id: int,
    family: AddressFamily,
    monitor_cfg: MonitorConfig,
    analysis_cfg: AnalysisConfig,
) -> tuple[RemovalReason | None, int | None]:
    """Screen one family's series; returns (reason, step_round)."""
    cdb = columnar_view(db)
    speeds = converged_speeds(cdb, site_id, family)
    if len(speeds) < monitor_cfg.min_rounds:
        return RemovalReason.INSUFFICIENT_SAMPLES, None

    step = detect_step(
        speeds,
        filter_length=analysis_cfg.median_filter_length,
        threshold=analysis_cfg.step_threshold,
        persistence=analysis_cfg.step_persistence,
    )
    if step is not None:
        rounds = download_rounds(cdb, site_id, family)
        step_round = rounds[step.index] if step.index < len(rounds) else rounds[-1]
        reason = (
            RemovalReason.STEP_UP if step.direction > 0 else RemovalReason.STEP_DOWN
        )
        return reason, step_round

    trend = detect_trend(
        speeds,
        slope_threshold=analysis_cfg.trend_slope_threshold,
        p_value_threshold=analysis_cfg.trend_p_value,
    )
    if trend is not None:
        reason = (
            RemovalReason.TREND_UP if trend.direction > 0 else RemovalReason.TREND_DOWN
        )
        return reason, None

    interval = t_confidence_interval(speeds, monitor_cfg.confidence)
    if not interval.meets_target(monitor_cfg.ci_relative_width):
        return RemovalReason.UNSTABLE, None
    return None, None


def _near_path_change(
    db: MeasurementDatabase, site_id: int, step_round: int
) -> bool:
    cdb = columnar_view(db)
    for family in (AddressFamily.IPV4, AddressFamily.IPV6):
        for change_round in path_change_rounds(cdb, site_id, family):
            if abs(change_round - step_round) <= PATH_CHANGE_WINDOW:
                return True
    return False


def screen_site(
    db: MeasurementDatabase,
    site_id: int,
    monitor_cfg: MonitorConfig,
    analysis_cfg: AnalysisConfig,
) -> SiteScreening:
    """Apply the full screening to one site (both families)."""
    for family in (AddressFamily.IPV4, AddressFamily.IPV6):
        reason, step_round = _check_family(
            db, site_id, family, monitor_cfg, analysis_cfg
        )
        if reason is None:
            continue
        from_path_change = (
            step_round is not None and _near_path_change(db, site_id, step_round)
        )
        return SiteScreening(
            site_id=site_id,
            kept=False,
            reason=reason,
            reason_family=family,
            step_round=step_round,
            step_from_path_change=from_path_change,
        )
    return SiteScreening(site_id=site_id, kept=True)


def screen_all(
    db: MeasurementDatabase,
    site_ids: Iterable[int],
    monitor_cfg: MonitorConfig,
    analysis_cfg: AnalysisConfig,
) -> dict[int, SiteScreening]:
    """Screen many sites; returns ``{site_id: screening}``.

    Rejection causes are tallied into ``analysis.rejected.<reason>``
    counters (the Table 3 vocabulary) plus ``analysis.kept``, so a run's
    sanitize behaviour is visible in the metrics snapshot.
    """
    with span("analysis.screen", vantage=db.vantage_name):
        screenings = {
            site_id: screen_site(db, site_id, monitor_cfg, analysis_cfg)
            for site_id in site_ids
        }
    for screening in screenings.values():
        if screening.kept:
            metrics.counter("analysis.kept").inc()
        else:
            assert screening.reason is not None
            metrics.counter(f"analysis.rejected.{screening.reason.value}").inc()
    return screenings


def kept_sites(screenings: dict[int, SiteScreening]) -> list[int]:
    """Site ids that passed the screening."""
    return sorted(sid for sid, s in screenings.items() if s.kept)


def removed_sites(screenings: dict[int, SiteScreening]) -> list[int]:
    """Site ids that failed the screening."""
    return sorted(sid for sid, s in screenings.items() if not s.kept)
