"""Per-site performance summaries.

"A site's overall performance is obtained by averaging samples gathered
over many months" — these helpers compute that average (per family) and
the derived quantities every later step consumes: the relative v6-v4
difference and the "is IPv6 faster" indicator (Fig 3b).
"""

from __future__ import annotations

from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily


def site_mean_speed(
    db: MeasurementDatabase, site_id: int, family: AddressFamily
) -> float | None:
    """Mean of the site's per-round average speeds; None without data."""
    speeds = db.speeds(site_id, family)
    if not speeds:
        return None
    return sum(speeds) / len(speeds)


def site_relative_difference(
    db: MeasurementDatabase, site_id: int
) -> float | None:
    """``(v6 - v4) / v4`` of the site's mean speeds; None without data.

    Positive values mean IPv6 is faster.  Anchored on IPv4 like every
    comparison in the paper.
    """
    v4 = site_mean_speed(db, site_id, AddressFamily.IPV4)
    v6 = site_mean_speed(db, site_id, AddressFamily.IPV6)
    if v4 is None or v6 is None or v4 == 0:
        return None
    return (v6 - v4) / v4


def v6_faster(db: MeasurementDatabase, site_id: int) -> bool | None:
    """True when the site's mean IPv6 speed beats IPv4; None without data."""
    diff = site_relative_difference(db, site_id)
    if diff is None:
        return None
    return diff > 0.0


def fraction_v6_faster(db: MeasurementDatabase, site_ids) -> float | None:
    """Share of sites where IPv6 downloads are faster (Fig 3b's metric)."""
    verdicts = [v6_faster(db, sid) for sid in site_ids]
    verdicts = [v for v in verdicts if v is not None]
    if not verdicts:
        return None
    return sum(verdicts) / len(verdicts)
