"""'Good AS' coverage of DP paths (Table 13).

To rule out the data plane (D) as the cause of poor DP performance, the
paper checks whether the ASes along a DP destination's IPv6 path also
appear on *good* IPv6 paths — paths to SP destinations whose IPv6 and
IPv4 performance was comparable.  An AS present on a good path cannot be
degrading IPv6 forwarding (it would degrade the good path too).  Table 13
buckets DP paths by the fraction of their ASes that are known-good.
"""

from __future__ import annotations

from typing import Iterable

from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily
from .classify import ASGroup
from .hypotheses import ASEvaluation, ASVerdict

#: Table 13's coverage buckets (lower bound inclusive, upper exclusive,
#: except the exact-100% bucket).
GOODNESS_BUCKETS = ("100%", "[75%,100%)", "[50%,75%)", "[25%,50%)", "[0%,25%)")


def collect_good_ases(
    per_vantage: dict[str, tuple[MeasurementDatabase, dict[int, ASEvaluation]]],
) -> set[int]:
    """ASes found on any good IPv6 path, across all vantage points.

    A good path is the IPv6 path to an SP destination AS whose verdict is
    COMPARABLE; every AS on it (the vantage's own AS excluded) is good.
    """
    good: set[int] = set()
    for db, evaluations in per_vantage.values():
        for asn, evaluation in evaluations.items():
            if evaluation.verdict is not ASVerdict.COMPARABLE:
                continue
            # Any site of the AS carries the (shared) v6 path.
            for site_id in evaluation.zero_mode_site_ids or ():
                path = db.as_path(site_id, AddressFamily.IPV6)
                if path is not None:
                    good.update(path[1:])
                    break
            else:
                good.add(asn)
    return good


def dp_path_goodness(
    db: MeasurementDatabase,
    dp_groups: Iterable[ASGroup],
    good_ases: set[int],
) -> dict[int, float]:
    """Per DP destination AS, the fraction of its v6-path ASes that are good.

    The path evaluated is the IPv6 path of any site in the AS (they share
    it); the vantage's own AS is excluded from the denominator.
    """
    out: dict[int, float] = {}
    for group in dp_groups:
        path = None
        for site_id in group.site_ids:
            path = db.as_path(site_id, AddressFamily.IPV6)
            if path is not None:
                break
        if path is None or len(path) < 2:
            continue
        crossed = path[1:]
        n_good = sum(1 for asn in crossed if asn in good_ases)
        out[group.asn] = n_good / len(crossed)
    return out


def goodness_bucket(fraction: float) -> str:
    """Map a coverage fraction to its Table 13 bucket."""
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"coverage fraction out of range: {fraction}")
    if fraction == 1.0:
        return "100%"
    if fraction >= 0.75:
        return "[75%,100%)"
    if fraction >= 0.50:
        return "[50%,75%)"
    if fraction >= 0.25:
        return "[25%,50%)"
    return "[0%,25%)"


def goodness_buckets(fractions: Iterable[float]) -> dict[str, float]:
    """Share of DP paths per coverage bucket (the rows of Table 13)."""
    fractions = list(fractions)
    counts = {bucket: 0 for bucket in GOODNESS_BUCKETS}
    for fraction in fractions:
        counts[goodness_bucket(fraction)] += 1
    total = len(fractions)
    if total == 0:
        return {bucket: 0.0 for bucket in GOODNESS_BUCKETS}
    return {bucket: counts[bucket] / total for bucket in GOODNESS_BUCKETS}
