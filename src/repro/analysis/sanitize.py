"""Causes of confidence-target failures (Table 3).

For every removed site, report why: not enough samples, a sharp step up
or down (and, for steps, whether a path change coincided — the paper
found e.g. 64 of 283 Penn transitions were path changes), or a steady
linear trend.  ``UNSTABLE`` collects CI failures with no identified
cause, which the paper's table does not break out.
"""

from __future__ import annotations

from dataclasses import dataclass

from .confidence import RemovalReason, SiteScreening


@dataclass(frozen=True)
class FailureCauses:
    """Aggregated removal causes for one vantage point (a Table 3 row)."""

    vantage_name: str
    insufficient: int
    step_up: int
    step_down: int
    trend_up: int
    trend_down: int
    unstable: int
    #: among step removals, how many coincided with a path change.
    steps_from_path_changes: int

    @property
    def total_removed(self) -> int:
        return (
            self.insufficient
            + self.step_up
            + self.step_down
            + self.trend_up
            + self.trend_down
            + self.unstable
        )

    @property
    def total_steps(self) -> int:
        return self.step_up + self.step_down


def categorise_failures(
    vantage_name: str, screenings: dict[int, SiteScreening]
) -> FailureCauses:
    """Count removal causes over a vantage point's screenings."""
    counts = {reason: 0 for reason in RemovalReason}
    steps_from_path_changes = 0
    for screening in screenings.values():
        if screening.kept:
            continue
        assert screening.reason is not None
        counts[screening.reason] += 1
        if screening.reason.is_step and screening.step_from_path_change:
            steps_from_path_changes += 1
    return FailureCauses(
        vantage_name=vantage_name,
        insufficient=counts[RemovalReason.INSUFFICIENT_SAMPLES],
        step_up=counts[RemovalReason.STEP_UP],
        step_down=counts[RemovalReason.STEP_DOWN],
        trend_up=counts[RemovalReason.TREND_UP],
        trend_down=counts[RemovalReason.TREND_DOWN],
        unstable=counts[RemovalReason.UNSTABLE],
        steps_from_path_changes=steps_from_path_changes,
    )
