"""The negative finding of Section 5.5.

"A question of obvious interest is whether sites/ASes that exhibit
better IPv6 performance than IPv4 share some common property. ...
Unfortunately, no such grouping emerged."

``trait_analysis`` repeats that investigation: take the sites where IPv6
beats IPv4, compare each candidate trait's share in that group to the
trait's baseline share among all analysed sites, and report whether any
trait dominates (large lift *and* large support).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Iterable

from ..monitor.database import MeasurementDatabase
from .classify import SiteClassification
from .metrics import v6_faster

#: Minimum lift over baseline, minimum support (share of the winner
#: group), and minimum absolute winner count for a trait to count as
#: dominant - the count floor keeps one-site flukes from "dominating".
DOMINANCE_LIFT = 1.5
DOMINANCE_SUPPORT = 0.5
DOMINANCE_MIN_COUNT = 3


@dataclass(frozen=True)
class TraitShare:
    """One trait value's prevalence among winners versus baseline."""

    trait: str
    value: Hashable
    winner_share: float
    baseline_share: float
    winner_count: int = 0

    @property
    def lift(self) -> float:
        if self.baseline_share == 0:
            return float("inf") if self.winner_share > 0 else 1.0
        return self.winner_share / self.baseline_share

    @property
    def dominant(self) -> bool:
        return (
            self.lift >= DOMINANCE_LIFT
            and self.winner_share >= DOMINANCE_SUPPORT
            and self.winner_count >= DOMINANCE_MIN_COUNT
        )


@dataclass(frozen=True)
class TraitReport:
    """The Section 5.5 investigation's outcome."""

    n_winners: int
    n_baseline: int
    shares: tuple[TraitShare, ...]

    @property
    def dominant_traits(self) -> tuple[TraitShare, ...]:
        return tuple(s for s in self.shares if s.dominant)

    @property
    def no_dominant_trait(self) -> bool:
        """The paper's finding: no grouping emerged."""
        return not self.dominant_traits


def _shares(values: Iterable[Hashable]) -> dict[Hashable, float]:
    values = list(values)
    if not values:
        return {}
    counts: dict[Hashable, int] = {}
    for value in values:
        counts[value] = counts.get(value, 0) + 1
    return {value: count / len(values) for value, count in counts.items()}


def trait_analysis(
    db: MeasurementDatabase,
    classifications: dict[int, SiteClassification],
    extra_traits: dict[str, Callable[[int], Hashable]] | None = None,
) -> TraitReport:
    """Look for a common trait among sites where IPv6 outperforms IPv4.

    Built-in traits: the site's category (DL/SP/DP) and its destination
    AS.  ``extra_traits`` adds custom ones (e.g. region via the catalog):
    each maps a site id to a trait value.
    """
    traits: dict[str, Callable[[int], Hashable]] = {
        "category": lambda sid: classifications[sid].category.value,
        "dest_as": lambda sid: classifications[sid].dest_v4,
    }
    if extra_traits:
        traits.update(extra_traits)

    baseline_ids = sorted(classifications)
    winner_ids = [sid for sid in baseline_ids if v6_faster(db, sid)]

    shares: list[TraitShare] = []
    for trait_name, getter in traits.items():
        baseline = _shares(getter(sid) for sid in baseline_ids)
        winners = _shares(getter(sid) for sid in winner_ids)
        for value, winner_share in winners.items():
            shares.append(
                TraitShare(
                    trait=trait_name,
                    value=value,
                    winner_share=winner_share,
                    baseline_share=baseline.get(value, 0.0),
                    winner_count=round(winner_share * len(winner_ids)),
                )
            )
    shares.sort(key=lambda s: (-s.winner_share, s.trait, str(s.value)))
    return TraitReport(
        n_winners=len(winner_ids),
        n_baseline=len(baseline_ids),
        shares=tuple(shares),
    )
