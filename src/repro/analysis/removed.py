"""The removed-site bias audit (Table 5).

Removing sites that miss the confidence target could bias the H1/H2
analysis.  The paper audits this by classifying every removed site (that
had enough samples to judge) into SP/DP/DL and into good (IPv6 within
10% of IPv4, or better) versus bad relative IPv6 performance, then
arguing the imbalances are small or conservative.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..monitor.database import MeasurementDatabase
from .classify import SiteCategory, classify_site
from .confidence import RemovalReason, SiteScreening
from .metrics import site_relative_difference


@dataclass(frozen=True)
class RemovedSiteAudit:
    """Counts of removed sites by (category, performance) — a Table 5 column."""

    vantage_name: str
    sp_good: int
    sp_bad: int
    dp_good: int
    dp_bad: int
    dl_good: int
    dl_bad: int

    def count(self, category: SiteCategory, good: bool) -> int:
        return {
            (SiteCategory.SP, True): self.sp_good,
            (SiteCategory.SP, False): self.sp_bad,
            (SiteCategory.DP, True): self.dp_good,
            (SiteCategory.DP, False): self.dp_bad,
            (SiteCategory.DL, True): self.dl_good,
            (SiteCategory.DL, False): self.dl_bad,
        }[(category, good)]

    @property
    def total(self) -> int:
        return (
            self.sp_good + self.sp_bad + self.dp_good
            + self.dp_bad + self.dl_good + self.dl_bad
        )


def audit_removed_sites(
    vantage_name: str,
    db: MeasurementDatabase,
    screenings: dict[int, SiteScreening],
    comparable_threshold: float = 0.10,
) -> RemovedSiteAudit:
    """Build Table 5's column for one vantage point.

    Only removals with sufficient samples are auditable ("sites for which
    sufficient samples were available, i.e., the last four columns of
    Table 3"); insufficient-sample sites are skipped.
    """
    counts = {
        (category, good): 0
        for category in SiteCategory
        for good in (True, False)
    }
    for site_id, screening in screenings.items():
        if screening.kept:
            continue
        if screening.reason is RemovalReason.INSUFFICIENT_SAMPLES:
            continue
        classification = classify_site(db, site_id)
        diff = site_relative_difference(db, site_id)
        if classification is None or diff is None:
            continue
        good = diff >= -comparable_threshold
        counts[(classification.category, good)] += 1
    return RemovedSiteAudit(
        vantage_name=vantage_name,
        sp_good=counts[(SiteCategory.SP, True)],
        sp_bad=counts[(SiteCategory.SP, False)],
        dp_good=counts[(SiteCategory.DP, True)],
        dp_bad=counts[(SiteCategory.DP, False)],
        dl_good=counts[(SiteCategory.DL, True)],
        dl_bad=counts[(SiteCategory.DL, False)],
    )
