"""Zero-mode detection.

When an AS's overall IPv6 performance is worse than IPv4 even though the
paths coincide, the paper checks the *distribution* of per-site
differences for a mode around zero: "a zero-mode is claimed if there is
at least one site for which this difference is within 10% of IPv4
performance".  Sites in the zero-mode have healthy servers; the laggards
drag the AS mean down — implicating the servers (S), not the network (D).
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..monitor.database import MeasurementDatabase
from .metrics import site_relative_difference


def relative_differences(
    db: MeasurementDatabase, site_ids: Iterable[int]
) -> dict[int, float]:
    """Per-site ``(v6 - v4)/v4`` for every site with data."""
    out: dict[int, float] = {}
    for site_id in site_ids:
        diff = site_relative_difference(db, site_id)
        if diff is not None:
            out[site_id] = diff
    return out


def has_zero_mode(diffs: Sequence[float], threshold: float = 0.10) -> bool:
    """The paper's criterion: at least one difference within ``threshold``."""
    return any(abs(d) <= threshold for d in diffs)


def zero_mode_sites(
    diffs: dict[int, float], threshold: float = 0.10
) -> list[int]:
    """Sites belonging to the zero-mode (|diff| within the threshold).

    These are the "servers known to perform well in IPv6" the paper later
    reuses to rule out server effects at other vantage points.
    """
    return sorted(sid for sid, d in diffs.items() if abs(d) <= threshold)
