"""The paper's analysis pipeline (Sections 4 and 5).

Order of operations, per vantage point:

1. :mod:`metrics` — per-site performance summaries from the raw database;
2. :mod:`confidence` — screen sites against the cross-round confidence
   target; removed sites get a cause (:mod:`sanitize`, Table 3) and a
   bias audit (:mod:`removed`, Table 5);
3. :mod:`classify` — split kept sites into DL / SP / DP and group SL
   sites by destination AS (Fig 4, Table 4);
4. :mod:`hypotheses` + :mod:`zeromode` — per-AS verdicts validating H1
   (Table 8) and H2 (Table 11), cross-checked across vantage points
   (:mod:`crosscheck`);
5. :mod:`hopcount` — performance by AS-path length (Tables 7 and 9);
6. :mod:`goodas` — "good AS" coverage of DP paths (Table 13);
7. :mod:`misc` — the negative finding of Section 5.5.
"""

from .metrics import site_mean_speed, site_relative_difference, v6_faster
from .confidence import RemovalReason, SiteScreening, screen_all, screen_site
from .classify import (
    ASGroup,
    SiteCategory,
    SiteClassification,
    TransitionKind,
    classify_site,
    classify_sites,
    classify_transitions,
    group_by_destination,
    sites_in_transition,
    transition_split,
)
from .zeromode import has_zero_mode, relative_differences, zero_mode_sites
from .hypotheses import ASEvaluation, ASVerdict, evaluate_as, evaluate_groups
from .crosscheck import CrossCheckResult, cross_check
from .hopcount import HopBucket, performance_by_hopcount
from .goodas import collect_good_ases, dp_path_goodness, goodness_buckets
from .sanitize import FailureCauses, categorise_failures
from .removed import RemovedSiteAudit, audit_removed_sites
from .misc import TraitReport, trait_analysis
from .pathdiff import (
    DivergenceSummary,
    PathComparison,
    compare_site_paths,
    summarise_divergence,
)

__all__ = [
    "site_mean_speed",
    "site_relative_difference",
    "v6_faster",
    "RemovalReason",
    "SiteScreening",
    "screen_all",
    "screen_site",
    "ASGroup",
    "SiteCategory",
    "SiteClassification",
    "TransitionKind",
    "classify_site",
    "classify_sites",
    "classify_transitions",
    "group_by_destination",
    "sites_in_transition",
    "transition_split",
    "has_zero_mode",
    "relative_differences",
    "zero_mode_sites",
    "ASEvaluation",
    "ASVerdict",
    "evaluate_as",
    "evaluate_groups",
    "CrossCheckResult",
    "cross_check",
    "HopBucket",
    "performance_by_hopcount",
    "collect_good_ases",
    "dp_path_goodness",
    "goodness_buckets",
    "FailureCauses",
    "categorise_failures",
    "RemovedSiteAudit",
    "audit_removed_sites",
    "TraitReport",
    "trait_analysis",
    "DivergenceSummary",
    "PathComparison",
    "compare_site_paths",
    "summarise_divergence",
]
