"""Performance by AS-path hop count (Tables 7 and 9).

Sites are bucketed by the length of their recorded AS path — separately
per family, because in the DL+DP population (Table 7) the IPv6 path may
be a different length than the IPv4 one.  The interesting artifact the
buckets expose: tunnels make IPv6 paths *look* 1-2 hops long while the
underlying forwarding detour is longer, so short-bucket IPv6 performance
is anomalously poor; as hop counts grow (and tunnels become unlikely)
IPv6 converges to IPv4 — evidence for H1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..data.columnar import columnar_view
from ..data.query import mean_speed as query_mean_speed
from ..data.query import modal_as_path
from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily

#: Bucket labels in table order; the last is open-ended.
BUCKETS = ("1", "2", "3", "4", ">=5")


def bucket_of(hops: int) -> str:
    """Map a hop count to its table bucket."""
    if hops < 1:
        raise ValueError(f"hop counts start at 1, got {hops}")
    if hops >= 5:
        return ">=5"
    return str(hops)


@dataclass(frozen=True)
class HopBucket:
    """One (family, bucket) cell: mean speed and population."""

    family: AddressFamily
    bucket: str
    n_sites: int
    mean_speed: float | None


def performance_by_hopcount(
    db: MeasurementDatabase, site_ids: Iterable[int]
) -> dict[AddressFamily, dict[str, HopBucket]]:
    """Bucketed mean speeds per family for the given sites.

    Hop count of a site-family is ``len(modal AS path) - 1`` (an
    adjacent destination is 1 hop).  Sites without a path or without
    speed data in a family are skipped for that family.
    """
    cdb = columnar_view(db)
    sums: dict[tuple[AddressFamily, str], float] = {}
    counts: dict[tuple[AddressFamily, str], int] = {}
    for site_id in site_ids:
        for family in (AddressFamily.IPV4, AddressFamily.IPV6):
            path = modal_as_path(cdb, site_id, family)
            speed = query_mean_speed(cdb, site_id, family)
            if path is None or speed is None or len(path) < 2:
                continue
            bucket = bucket_of(len(path) - 1)
            key = (family, bucket)
            sums[key] = sums.get(key, 0.0) + speed
            counts[key] = counts.get(key, 0) + 1

    out: dict[AddressFamily, dict[str, HopBucket]] = {}
    for family in (AddressFamily.IPV4, AddressFamily.IPV6):
        row: dict[str, HopBucket] = {}
        for bucket in BUCKETS:
            key = (family, bucket)
            n = counts.get(key, 0)
            row[bucket] = HopBucket(
                family=family,
                bucket=bucket,
                n_sites=n,
                mean_speed=(sums[key] / n) if n else None,
            )
        out[family] = row
    return out
