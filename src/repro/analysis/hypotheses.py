"""Per-AS performance verdicts — the machinery behind Tables 8 and 11.

For every destination AS (grouped SP or DP), compare the average IPv6 and
IPv4 download speeds across its sites:

* **COMPARABLE** — IPv6 within the 10% band of IPv4, or better;
* **ZERO_MODE** — worse overall, but the per-site difference distribution
  has a mode at zero (healthy servers exist ⇒ blame servers, not paths);
* **SMALL_N** — worse, no zero mode, and too few sites (< 4) to expect
  one;
* **WORSE** — worse, no zero mode, despite enough sites.

Under H1, SP ASes should be overwhelmingly COMPARABLE (plus explainable
residue).  Under H2, DP ASes should be mostly WORSE — routing, the one
factor distinguishing DP from SP, is the culprit.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..config import AnalysisConfig
from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily
from ..obs import metrics, span
from .classify import ASGroup
from .metrics import site_mean_speed
from .zeromode import has_zero_mode, relative_differences, zero_mode_sites


class ASVerdict(Enum):
    """Verdict for one destination AS."""

    COMPARABLE = "comparable"
    ZERO_MODE = "zero_mode"
    SMALL_N = "small_n"
    WORSE = "worse"


@dataclass(frozen=True)
class ASEvaluation:
    """One AS's verdict plus the numbers behind it."""

    asn: int
    verdict: ASVerdict
    n_sites: int
    v4_speed: float
    v6_speed: float
    zero_mode_site_ids: tuple[int, ...]

    @property
    def relative_difference(self) -> float:
        if self.v4_speed == 0:
            return 0.0
        return (self.v6_speed - self.v4_speed) / self.v4_speed


def evaluate_as(
    db: MeasurementDatabase,
    group: ASGroup,
    analysis_cfg: AnalysisConfig,
    site_filter: Iterable[int] | None = None,
) -> ASEvaluation | None:
    """Evaluate one destination AS; None when no site has usable data.

    ``site_filter`` restricts the evaluation to a subset of the group's
    sites — used for the cross-vantage server-exoneration step, where a
    DP AS is re-evaluated using only sites whose servers are known-good
    from an SP vantage point.
    """
    site_ids = list(group.site_ids)
    if site_filter is not None:
        allowed = set(site_filter)
        site_ids = [sid for sid in site_ids if sid in allowed]
    v4_means = []
    v6_means = []
    usable: list[int] = []
    for sid in site_ids:
        v4 = site_mean_speed(db, sid, AddressFamily.IPV4)
        v6 = site_mean_speed(db, sid, AddressFamily.IPV6)
        if v4 is None or v6 is None:
            continue
        usable.append(sid)
        v4_means.append(v4)
        v6_means.append(v6)
    if not usable:
        return None
    v4_speed = sum(v4_means) / len(v4_means)
    v6_speed = sum(v6_means) / len(v6_means)

    threshold = analysis_cfg.comparable_threshold
    diffs = relative_differences(db, usable)
    zm_sites = tuple(zero_mode_sites(diffs, threshold))

    comparable = v6_speed >= v4_speed or (v4_speed - v6_speed) / v4_speed <= threshold
    if comparable:
        verdict = ASVerdict.COMPARABLE
    elif has_zero_mode(list(diffs.values()), threshold):
        verdict = ASVerdict.ZERO_MODE
    elif len(usable) < analysis_cfg.small_as_site_count:
        verdict = ASVerdict.SMALL_N
    else:
        verdict = ASVerdict.WORSE
    return ASEvaluation(
        asn=group.asn,
        verdict=verdict,
        n_sites=len(usable),
        v4_speed=v4_speed,
        v6_speed=v6_speed,
        zero_mode_site_ids=zm_sites,
    )


def evaluate_groups(
    db: MeasurementDatabase,
    groups: Iterable[ASGroup],
    analysis_cfg: AnalysisConfig,
) -> dict[int, ASEvaluation]:
    """Evaluate every AS group with data; returns ``{asn: evaluation}``."""
    with span("analysis.evaluate", vantage=db.vantage_name):
        out: dict[int, ASEvaluation] = {}
        for group in groups:
            evaluation = evaluate_as(db, group, analysis_cfg)
            if evaluation is not None:
                out[group.asn] = evaluation
        metrics.counter("analysis.groups_evaluated").inc(len(out))
        return out


def verdict_fractions(
    evaluations: Iterable[ASEvaluation],
) -> dict[ASVerdict, float]:
    """Share of ASes per verdict (the percentage rows of Tables 8/11)."""
    evaluations = list(evaluations)
    if not evaluations:
        return {verdict: 0.0 for verdict in ASVerdict}
    counts = {verdict: 0 for verdict in ASVerdict}
    for evaluation in evaluations:
        counts[evaluation.verdict] += 1
    return {v: counts[v] / len(evaluations) for v in ASVerdict}
