"""Site and destination-AS classification (the paper's Fig 4).

Sites are first partitioned by *location*: SL (same AS hosts the A and
AAAA addresses) versus DL (different locations, typically v4-only CDN
users).  SL sites then split by *path*: SP (the IPv6 and IPv4 AS paths
coincide) versus DP (they differ).  The same split is lifted to the
destination-AS level, which is the unit H1 and H2 are evaluated on.

Beyond the paper: when the scenario's NAT64/DNS64 axis is on, the
two-way native/tunneled view of IPv6 reachability becomes the three-way
:class:`TransitionKind` split (native / tunneled / translated), derived
from the monitor's recorded transitions table.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..data.columnar import columnar_view
from ..data.query import dest_asn, modal_as_path
from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily
from ..obs import span


class SiteCategory(Enum):
    """The paper's three site buckets."""

    DL = "DL"  # different locations (v4 and v6 in different ASes)
    SP = "SP"  # same location, same AS path
    DP = "DP"  # same location, different AS paths

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SiteClassification:
    """One site's category plus the evidence it was derived from."""

    site_id: int
    category: SiteCategory
    dest_v4: int
    dest_v6: int
    path_v4: tuple[int, ...]
    path_v6: tuple[int, ...]

    @property
    def same_location(self) -> bool:
        return self.dest_v4 == self.dest_v6


def classify_site(
    db: MeasurementDatabase, site_id: int
) -> SiteClassification | None:
    """Classify one site from its recorded paths; None without path data.

    Uses the *modal* AS path per family (path-change sites are classified
    by the path they used most of the time, as the paper effectively does
    by comparing stable AS-path snapshots).
    """
    cdb = columnar_view(db)
    dest_v4 = dest_asn(cdb, site_id, AddressFamily.IPV4)
    dest_v6 = dest_asn(cdb, site_id, AddressFamily.IPV6)
    path_v4 = modal_as_path(cdb, site_id, AddressFamily.IPV4)
    path_v6 = modal_as_path(cdb, site_id, AddressFamily.IPV6)
    if dest_v4 is None or dest_v6 is None or path_v4 is None or path_v6 is None:
        return None
    if dest_v4 != dest_v6:
        category = SiteCategory.DL
    elif path_v4 == path_v6:
        category = SiteCategory.SP
    else:
        category = SiteCategory.DP
    return SiteClassification(
        site_id=site_id,
        category=category,
        dest_v4=dest_v4,
        dest_v6=dest_v6,
        path_v4=path_v4,
        path_v6=path_v6,
    )


def classify_sites(
    db: MeasurementDatabase, site_ids: Iterable[int]
) -> dict[int, SiteClassification]:
    """Classify many sites, skipping those without path data."""
    with span("analysis.classify", vantage=db.vantage_name):
        out: dict[int, SiteClassification] = {}
        for site_id in site_ids:
            classification = classify_site(db, site_id)
            if classification is not None:
                out[site_id] = classification
        return out


def sites_in_category(
    classifications: dict[int, SiteClassification], category: SiteCategory
) -> list[int]:
    return sorted(
        sid for sid, c in classifications.items() if c.category is category
    )


@dataclass(frozen=True)
class ASGroup:
    """A destination AS with its SL sites and its SP/DP verdict.

    An AS lands in SP when its sites' v4 and v6 paths coincide; sites
    whose paths flipped mid-campaign can dissent, so the verdict follows
    the majority of the AS's sites.
    """

    asn: int
    category: SiteCategory  # SP or DP only
    site_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if self.category is SiteCategory.DL:
            raise ValueError("AS groups exist only for SL (SP/DP) sites")

    @property
    def n_sites(self) -> int:
        return len(self.site_ids)


def group_by_destination(
    classifications: dict[int, SiteClassification],
) -> dict[int, ASGroup]:
    """Group SL sites by destination AS and derive each AS's SP/DP label."""
    members: dict[int, list[int]] = {}
    sp_votes: dict[int, int] = {}
    for sid, c in classifications.items():
        if c.category is SiteCategory.DL:
            continue
        members.setdefault(c.dest_v4, []).append(sid)
        if c.category is SiteCategory.SP:
            sp_votes[c.dest_v4] = sp_votes.get(c.dest_v4, 0) + 1
    groups: dict[int, ASGroup] = {}
    for asn, sids in members.items():
        sp = sp_votes.get(asn, 0)
        category = SiteCategory.SP if sp * 2 >= len(sids) else SiteCategory.DP
        groups[asn] = ASGroup(
            asn=asn, category=category, site_ids=tuple(sorted(sids))
        )
    return groups


def groups_in_category(
    groups: dict[int, ASGroup], category: SiteCategory
) -> list[ASGroup]:
    return sorted(
        (g for g in groups.values() if g.category is category),
        key=lambda g: g.asn,
    )


class TransitionKind(Enum):
    """How a site's IPv6 traffic crosses the v6 Internet.

    NATIVE and TUNNELED refine the old implicit two-way reachability
    view; TRANSLATED marks sites reached only through a NAT64 gateway,
    i.e. their AAAA answer was DNS64-synthesized from an A record.
    """

    NATIVE = "native"
    TUNNELED = "tunneled"
    TRANSLATED = "translated"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


def classify_transitions(
    db: MeasurementDatabase, site_ids: Iterable[int] | None = None
) -> dict[int, TransitionKind]:
    """Latest-observed transition kind per site (the three-way split).

    A site that adopts native IPv6 mid-campaign moves from TRANSLATED
    to NATIVE: classification follows its most recent round, matching
    :meth:`~repro.monitor.database.MeasurementDatabase.transition_kind_of`.
    Sites without transition rows (transition recording off, or the
    site never measured over v6) are omitted.
    """
    with span("analysis.transitions", vantage=db.vantage_name):
        latest: dict[int, str] = {}
        for obs in db.transitions:
            latest[obs.site_id] = obs.kind
        if site_ids is not None:
            wanted = set(site_ids)
            latest = {sid: k for sid, k in latest.items() if sid in wanted}
        return {
            sid: TransitionKind(kind) for sid, kind in sorted(latest.items())
        }


def transition_split(
    classifications: dict[int, TransitionKind],
) -> dict[TransitionKind, int]:
    """Site counts per transition kind, every kind present (zeros kept)."""
    counts = {kind: 0 for kind in TransitionKind}
    for kind in classifications.values():
        counts[kind] += 1
    return counts


def sites_in_transition(
    classifications: dict[int, TransitionKind], kind: TransitionKind
) -> list[int]:
    return sorted(sid for sid, k in classifications.items() if k is kind)
