"""Cross-vantage validation (Table 8's last two rows).

An SP destination AS observed from several vantage points should land in
the same verdict category everywhere — if the data plane of the AS (and
its servers) really explain its behaviour, the vantage point should not
matter.  A *positive* cross-check is an AS with one consistent category
across all its vantage points; a *negative* one is an AS whose category
differs.  The paper found only positives.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import AnalysisConfig
from ..monitor.database import MeasurementDatabase
from .classify import ASGroup
from .hypotheses import ASEvaluation, ASVerdict, evaluate_as
from .zeromode import relative_differences


@dataclass(frozen=True)
class CrossCheckResult:
    """Outcome of the cross-vantage comparison."""

    checkable_ases: int
    positive: int
    negative: int
    #: ASes with conflicting verdicts, for inspection.
    conflicts: tuple[int, ...]

    @property
    def all_positive(self) -> bool:
        return self.checkable_ases > 0 and self.negative == 0


def cross_check(
    per_vantage: dict[str, dict[int, ASEvaluation]],
) -> CrossCheckResult:
    """Compare AS verdicts across vantage points.

    ``per_vantage`` maps vantage name to its ``{asn: evaluation}`` (for
    the same AS population, typically SP ASes).  Only ASes present from
    at least two vantage points are checkable.
    """
    verdicts_by_as: dict[int, set[ASVerdict]] = {}
    for evaluations in per_vantage.values():
        for asn, evaluation in evaluations.items():
            verdicts_by_as.setdefault(asn, set()).add(evaluation.verdict)
    seen_counts: dict[int, int] = {}
    for evaluations in per_vantage.values():
        for asn in evaluations:
            seen_counts[asn] = seen_counts.get(asn, 0) + 1

    checkable = [asn for asn, count in seen_counts.items() if count >= 2]
    positive = [asn for asn in checkable if len(verdicts_by_as[asn]) == 1]
    negative = [asn for asn in checkable if len(verdicts_by_as[asn]) > 1]
    return CrossCheckResult(
        checkable_ases=len(checkable),
        positive=len(positive),
        negative=len(negative),
        conflicts=tuple(sorted(negative)),
    )


def cross_check_common_sites(
    per_vantage: dict[str, tuple[MeasurementDatabase, dict[int, ASGroup]]],
    analysis_cfg: AnalysisConfig,
) -> CrossCheckResult:
    """Cross-check AS verdicts over the vantage points' *common* sites.

    Vantage points monitor overlapping-but-different site sets (start
    dates, churn sampling, external feeds), so naive verdict comparison
    can flip on an impaired-server site that only one vantage measured —
    a site effect, not an AS effect.  Re-evaluating every shared AS on
    the intersection of its measured sites removes that artifact; what
    remains compares like with like, which is the paper's intent.
    """
    # Which vantages saw which AS, and with which measured sites.
    sightings: dict[int, list[str]] = {}
    for name, (db, groups) in per_vantage.items():
        for asn in groups:
            sightings.setdefault(asn, []).append(name)

    verdicts_by_as: dict[int, set[ASVerdict]] = {}
    checkable: list[int] = []
    for asn, names in sightings.items():
        if len(names) < 2:
            continue
        common: set[int] | None = None
        for name in names:
            db, groups = per_vantage[name]
            measured = set(relative_differences(db, groups[asn].site_ids))
            common = measured if common is None else (common & measured)
        if not common:
            continue
        verdicts: set[ASVerdict] = set()
        for name in names:
            db, groups = per_vantage[name]
            evaluation = evaluate_as(
                db, groups[asn], analysis_cfg, site_filter=common
            )
            if evaluation is not None:
                verdicts.add(evaluation.verdict)
        if not verdicts:
            continue
        checkable.append(asn)
        verdicts_by_as[asn] = verdicts

    positive = [asn for asn in checkable if len(verdicts_by_as[asn]) == 1]
    negative = [asn for asn in checkable if len(verdicts_by_as[asn]) > 1]
    return CrossCheckResult(
        checkable_ases=len(checkable),
        positive=len(positive),
        negative=len(negative),
        conflicts=tuple(sorted(negative)),
    )


def known_good_sites(
    per_vantage: dict[str, dict[int, ASEvaluation]],
) -> dict[int, set[int]]:
    """Per AS, sites whose servers are known to perform well in IPv6.

    From any vantage where an AS is SP, its COMPARABLE sites and its
    zero-mode members have demonstrably healthy IPv6 servers.  The paper
    reuses these at vantage points where the same AS is DP, to rule out
    server effects there.
    """
    good: dict[int, set[int]] = {}
    for evaluations in per_vantage.values():
        for asn, evaluation in evaluations.items():
            bucket = good.setdefault(asn, set())
            if evaluation.verdict is ASVerdict.COMPARABLE:
                bucket.update(evaluation.zero_mode_site_ids)
            elif evaluation.verdict is ASVerdict.ZERO_MODE:
                bucket.update(evaluation.zero_mode_site_ids)
    return good
