"""AS-path comparison utilities.

Section 5.4 reasons about *how* IPv6 and IPv4 paths differ, not just
whether they do.  These helpers quantify the difference for a DP site:
where the paths fork, how much they share, and how their lengths
compare — feeding the per-vantage divergence summaries and the Table 7
interpretation (apparent shortening by tunnels).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..monitor.database import MeasurementDatabase
from ..net.addresses import AddressFamily


@dataclass(frozen=True)
class PathComparison:
    """Structural comparison of one site's IPv4 and IPv6 AS paths."""

    path_v4: tuple[int, ...]
    path_v6: tuple[int, ...]

    @property
    def identical(self) -> bool:
        return self.path_v4 == self.path_v6

    @property
    def length_delta(self) -> int:
        """IPv6 hops minus IPv4 hops (negative = v6 looks shorter)."""
        return len(self.path_v6) - len(self.path_v4)

    @property
    def common_prefix_length(self) -> int:
        """Shared leading ASes (both start at the vantage AS)."""
        n = 0
        for a, b in zip(self.path_v4, self.path_v6):
            if a != b:
                break
            n += 1
        return n

    @property
    def common_suffix_length(self) -> int:
        """Shared trailing ASes (both end at the destination for SL sites)."""
        n = 0
        for a, b in zip(reversed(self.path_v4), reversed(self.path_v6)):
            if a != b:
                break
            n += 1
        return min(n, min(len(self.path_v4), len(self.path_v6)))

    @property
    def divergence_hop(self) -> int | None:
        """Index of the first differing hop; None for identical paths."""
        if self.identical:
            return None
        return self.common_prefix_length

    @property
    def shared_fraction(self) -> float:
        """Jaccard similarity of the AS sets (structure-free overlap)."""
        a, b = set(self.path_v4), set(self.path_v6)
        union = a | b
        if not union:
            return 1.0
        return len(a & b) / len(union)

    def disjoint_middle(self) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """The differing middles of the two paths (prefix/suffix stripped)."""
        pre = self.common_prefix_length
        suf = self.common_suffix_length
        v4_mid = self.path_v4[pre: len(self.path_v4) - suf]
        v6_mid = self.path_v6[pre: len(self.path_v6) - suf]
        return v4_mid, v6_mid


def compare_site_paths(
    db: MeasurementDatabase, site_id: int
) -> PathComparison | None:
    """Compare a site's modal IPv4 and IPv6 paths; None without data."""
    v4 = db.as_path(site_id, AddressFamily.IPV4)
    v6 = db.as_path(site_id, AddressFamily.IPV6)
    if v4 is None or v6 is None:
        return None
    return PathComparison(path_v4=v4, path_v6=v6)


@dataclass(frozen=True)
class DivergenceSummary:
    """Aggregate divergence statistics over a site population."""

    n_sites: int
    n_identical: int
    mean_length_delta: float
    mean_shared_fraction: float
    #: histogram of length deltas, ``{delta: count}``.
    delta_histogram: dict[int, int]

    @property
    def identical_fraction(self) -> float:
        return self.n_identical / self.n_sites if self.n_sites else 0.0


def summarise_divergence(
    db: MeasurementDatabase, site_ids: Iterable[int]
) -> DivergenceSummary:
    """Summarise path divergence across ``site_ids`` (DP sites, typically)."""
    comparisons = [
        c for c in (compare_site_paths(db, sid) for sid in site_ids)
        if c is not None
    ]
    if not comparisons:
        return DivergenceSummary(0, 0, 0.0, 0.0, {})
    histogram: dict[int, int] = {}
    for c in comparisons:
        histogram[c.length_delta] = histogram.get(c.length_delta, 0) + 1
    return DivergenceSummary(
        n_sites=len(comparisons),
        n_identical=sum(c.identical for c in comparisons),
        mean_length_delta=(
            sum(c.length_delta for c in comparisons) / len(comparisons)
        ),
        mean_shared_fraction=(
            sum(c.shared_fraction for c in comparisons) / len(comparisons)
        ),
        delta_histogram=dict(sorted(histogram.items())),
    )
