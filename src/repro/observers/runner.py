"""Run the observer panel over a campaign and build its reports.

The runner is the one place observers are executed: the CLI, the bench
harness, and the serving layer all call :func:`run_panel`, so every
consumer computes byte-identical reports.  The runner is also where the
pieces meet — it validates required tables, times each observer under a
``observers.run`` span, feeds the body's ``series`` through the trend
significance model (:mod:`repro.observers.trends`), and seals the result
into a content-addressed :class:`~repro.observers.reports.ObserverReport`.

Metrics (``repro.obs``): ``observers.runs`` / ``observers.reports`` /
``observers.errors`` counters and an ``observers.latency_ms`` histogram.
None of them feed back into report content, so reports stay bit-identical
with observability on or off.
"""

from __future__ import annotations

import time

from ..data.columnar import ColumnarRepository
from ..obs import metrics
from ..obs.trace import span
from .registry import Observer, all_observers, get_observer
from .reports import ObserverReport
from .trends import analyze_series

_RUNS = metrics.counter("observers.runs")
_REPORTS = metrics.counter("observers.reports")
_ERRORS = metrics.counter("observers.errors")
_LATENCY = metrics.histogram("observers.latency_ms")


def run_observer(
    observer: Observer,
    repository: ColumnarRepository,
    campaign_digest: str | None = None,
) -> ObserverReport:
    """Run one observer over one campaign and seal its report."""
    _RUNS.inc()
    started = time.perf_counter()
    try:
        with span("observers.run", observer=observer.name):
            observer.check_tables(repository)
            body = observer.fn(repository)
            body["trends"] = analyze_series(body.get("series", {}))
    except Exception:
        _ERRORS.inc()
        raise
    finally:
        _LATENCY.observe((time.perf_counter() - started) * 1000.0)
    report = ObserverReport(
        name=observer.name,
        version=observer.version,
        campaign_digest=campaign_digest,
        body=body,
    )
    _REPORTS.inc()
    return report


def run_panel(
    repository: ColumnarRepository,
    campaign_digest: str | None = None,
    names: list[str] | None = None,
) -> dict[str, ObserverReport]:
    """Run the (selected) observer panel; reports keyed by observer name.

    Observers run in sorted-name order — the canonical panel order —
    so metric counters accumulate identically on every backend.
    """
    if names is None:
        observers = all_observers()
    else:
        observers = [get_observer(name) for name in sorted(set(names))]
    return {
        observer.name: run_observer(observer, repository, campaign_digest)
        for observer in observers
    }
