"""Pluggable derived-metric observers over the query core.

The ROADMAP's observer framework: the paper's one-shot findings (speed
gaps, path divergence, tunnel inflation) recast as small, pure,
versioned observer functions over :mod:`repro.data.query`, producing
content-addressed canonical-JSON reports with long-horizon trend flags.

* :mod:`repro.observers.registry` — observer declaration + registry;
* :mod:`repro.observers.reports` — versioned content-addressed reports;
* :mod:`repro.observers.panel` — the derived-metric observer panel;
* :mod:`repro.observers.trends` — the trend-significance model;
* :mod:`repro.observers.runner` — the single execution path.
"""

from .registry import Observer, all_observers, get_observer, observer_names, register
from .reports import REPORT_SCHEMA, ObserverReport, canonical_json
from .runner import run_observer, run_panel
from .trends import TrendFlag, analyze_series, flag_series

__all__ = [
    "Observer",
    "ObserverReport",
    "REPORT_SCHEMA",
    "TrendFlag",
    "all_observers",
    "analyze_series",
    "canonical_json",
    "flag_series",
    "get_observer",
    "observer_names",
    "register",
    "run_observer",
    "run_panel",
]
