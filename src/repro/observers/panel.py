"""The initial observer panel (~50 lines each, à la world-observer).

Derived-metric observers over the query core, each turning one of the
paper's one-shot findings into a continuously watchable health signal:

* ``region_adoption``   — per-region IPv6 adoption score (Fig 1 / 3a);
* ``speed_parity``      — v6/v4 speed-parity index (H1/H2's observable);
* ``path_stability``    — modal-AS-path change rate (§5.4's churn);
* ``tunnel_prevalence`` — the Table-7 tunnel signature, watched;
* ``failure_watch``     — injected-failure/retry rate (faults table);
* ``hop_inflation``     — v6 vs v4 AS-path length inflation (Tables 7/9);
* ``transition_matrix`` — native/tunneled/translated adoption and the
  native-vs-NAT64 speed gap (transitions table; empty when off).

Every body follows the same convention: ``summary`` (headline scalars),
``per_vantage`` (the breakdown), and ``series`` (per-round trajectories
the trend significance model runs over).  All arithmetic iterates
vantages in sorted-name order and rows in ascending row id, so float
summation order — and therefore the report digest — is identical across
execution backends.
"""

from __future__ import annotations

from ..analysis.hopcount import BUCKETS, bucket_of
from ..data.columnar import ColumnarDatabase, ColumnarRepository
from ..data.query import (
    Aggregate,
    Filter,
    Query,
    dual_stack_sites,
    gather,
    mean_speed,
    modal_as_path,
    path_change_rounds,
    run_query,
    scan,
)
from ..monitor.database import TRANSITION_KINDS
from ..net.addresses import AddressFamily
from .registry import register

#: the paper's comparability band, reused as the parity band.
COMPARABLE_BAND = 0.10
#: apparent AS-hop ceiling of the tunnel signature (Table 7's anomaly).
TUNNEL_MAX_HOPS = 2

_FAMILIES = (AddressFamily.IPV4, AddressFamily.IPV6)


def _sorted_vantages(repository: ColumnarRepository):
    for name in sorted(repository.databases):
        yield name, repository.vantages.get(name, {}), repository.databases[name]


def _mean(values: list[float]) -> float | None:
    return sum(values) / len(values) if values else None


def _site_families(cdb: ColumnarDatabase, table: str) -> list[tuple[int, str]]:
    """Distinct (site_id, family) pairs of one table, in group order."""
    result = run_query(
        cdb,
        Query(
            table=table,
            group_by=("site_id", "family"),
            aggregates=(Aggregate(op="count", alias="rows"),),
        ),
    )
    return list(zip(result.columns["site_id"], result.columns["family"]))


def _paths_population(cdb: ColumnarDatabase) -> list[int]:
    """Sites with recorded paths in *both* families, ascending."""
    per_family: dict[str, set[int]] = {}
    for site_id, family in _site_families(cdb, "paths"):
        per_family.setdefault(family, set()).add(site_id)
    v4 = per_family.get(AddressFamily.IPV4.value, set())
    v6 = per_family.get(AddressFamily.IPV6.value, set())
    return sorted(v4 & v6)


def _series(points: dict[int, float]) -> dict:
    rounds = sorted(points)
    return {"rounds": rounds, "values": [points[r] for r in rounds]}


@register(
    name="region_adoption",
    version=1,
    description=(
        "Per-region IPv6 adoption score: the fraction of DNS-queried "
        "sites answering with a AAAA record, by vantage region and round "
        "(the paper's Fig 1 reachability curve, continuously derived)."
    ),
    required_tables=("dns_counts",),
    headline="adoption_score",
)
def region_adoption(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    regions: dict[str, list[float]] = {}
    global_aaaa: dict[int, int] = {}
    global_queried: dict[int, int] = {}
    for name, meta, cdb in _sorted_vantages(repository):
        table = cdb.table("dns_counts")
        rows = scan(table)
        rounds = gather(table, "round", rows)
        queried = gather(table, "queried", rows)
        with_aaaa = gather(table, "with_aaaa", rows)
        fractions = [
            (a / q) if q else 0.0 for a, q in zip(with_aaaa, queried)
        ]
        final = fractions[-1] if fractions else 0.0
        region = meta.get("location", name)
        per_vantage[name] = {
            "region": region,
            "n_rounds": len(rounds),
            "adoption_final": final,
            "adoption_mean": _mean(fractions),
        }
        regions.setdefault(region, []).append(final)
        for r, q, a in zip(rounds, queried, with_aaaa):
            global_queried[r] = global_queried.get(r, 0) + q
            global_aaaa[r] = global_aaaa.get(r, 0) + a
    adoption = {
        r: (global_aaaa[r] / global_queried[r]) if global_queried[r] else 0.0
        for r in global_queried
    }
    finals = [per_vantage[name]["adoption_final"] for name in sorted(per_vantage)]
    return {
        "summary": {
            "adoption_score": _mean(finals),
            "n_vantages": len(per_vantage),
            "n_regions": len(regions),
        },
        "per_region": {
            region: _mean(values) for region, values in sorted(regions.items())
        },
        "per_vantage": per_vantage,
        "series": {"adoption": _series(adoption)},
    }


@register(
    name="speed_parity",
    version=1,
    description=(
        "v6/v4 speed-parity index over dual-stack sites: mean per-site "
        "speed ratio and the fraction inside the paper's 10% "
        "comparability band (H1/H2's observable, per round)."
    ),
    required_tables=("downloads",),
    headline="parity_index",
)
def speed_parity(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    all_ratios: list[float] = []
    n_comparable = 0
    round_speeds: dict[int, dict[str, list[float]]] = {}
    for name, _, cdb in _sorted_vantages(repository):
        ratios: list[float] = []
        for site_id in dual_stack_sites(cdb):
            v4 = mean_speed(cdb, site_id, AddressFamily.IPV4)
            v6 = mean_speed(cdb, site_id, AddressFamily.IPV6)
            if v4 and v6 is not None:
                ratios.append(v6 / v4)
        comparable = sum(1 for r in ratios if abs(r - 1.0) <= COMPARABLE_BAND)
        per_vantage[name] = {
            "n_sites": len(ratios),
            "parity_index": _mean(ratios),
            "comparable_fraction": (
                comparable / len(ratios) if ratios else None
            ),
        }
        all_ratios.extend(ratios)
        n_comparable += comparable
        # Per-round family means over converged downloads (one scan).
        result = run_query(
            cdb,
            Query(
                table="downloads",
                where=(Filter("converged", "eq", True),),
                group_by=("round", "family"),
                aggregates=(Aggregate(op="mean", column="mean_speed"),),
            ),
        )
        for r, family, speed in zip(
            result.columns["round"],
            result.columns["family"],
            result.columns["mean_mean_speed"],
        ):
            round_speeds.setdefault(r, {}).setdefault(family, []).append(speed)
    parity_by_round: dict[int, float] = {}
    for r, families in round_speeds.items():
        v4 = _mean(families.get(AddressFamily.IPV4.value, []))
        v6 = _mean(families.get(AddressFamily.IPV6.value, []))
        if v4 and v6 is not None:
            parity_by_round[r] = v6 / v4
    return {
        "summary": {
            "parity_index": _mean(all_ratios),
            "comparable_fraction": (
                n_comparable / len(all_ratios) if all_ratios else None
            ),
            "n_sites": len(all_ratios),
        },
        "per_vantage": per_vantage,
        "series": {"parity": _series(parity_by_round)},
    }


@register(
    name="path_stability",
    version=1,
    description=(
        "Modal-AS-path stability: the rate of observed AS-path changes "
        "per path transition, by family (the churn behind the paper's "
        "path-change step sites), and the per-round change count."
    ),
    required_tables=("paths",),
    headline="stability_index",
)
def path_stability(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    total_changes = {f.value: 0 for f in _FAMILIES}
    total_transitions = {f.value: 0 for f in _FAMILIES}
    changes_by_round: dict[int, float] = {}
    for name, _, cdb in _sorted_vantages(repository):
        changes = {f.value: 0 for f in _FAMILIES}
        transitions = {f.value: 0 for f in _FAMILIES}
        for site_id, family_value in _site_families(cdb, "paths"):
            family = AddressFamily(family_value)
            change_rounds = path_change_rounds(cdb, site_id, family)
            table = cdb.table("paths")
            n_rows = len(
                scan(
                    table,
                    (
                        Filter("site_id", "eq", site_id),
                        Filter("family", "eq", family_value),
                    ),
                )
            )
            changes[family_value] += len(change_rounds)
            transitions[family_value] += max(0, n_rows - 1)
            for r in change_rounds:
                changes_by_round[r] = changes_by_round.get(r, 0.0) + 1.0
        per_vantage[name] = {
            family_value: {
                "changes": changes[family_value],
                "transitions": transitions[family_value],
                "change_rate": (
                    changes[family_value] / transitions[family_value]
                    if transitions[family_value]
                    else None
                ),
            }
            for family_value in sorted(changes)
        }
        for family_value in changes:
            total_changes[family_value] += changes[family_value]
            total_transitions[family_value] += transitions[family_value]
    n_changes = sum(total_changes.values())
    n_transitions = sum(total_transitions.values())
    overall_rate = n_changes / n_transitions if n_transitions else 0.0
    return {
        "summary": {
            "stability_index": 1.0 - overall_rate,
            "change_rate": overall_rate,
            "change_rate_v4": (
                total_changes[AddressFamily.IPV4.value]
                / total_transitions[AddressFamily.IPV4.value]
                if total_transitions[AddressFamily.IPV4.value]
                else None
            ),
            "change_rate_v6": (
                total_changes[AddressFamily.IPV6.value]
                / total_transitions[AddressFamily.IPV6.value]
                if total_transitions[AddressFamily.IPV6.value]
                else None
            ),
        },
        "per_vantage": per_vantage,
        "series": {"path_changes": _series(changes_by_round)},
    }


@register(
    name="tunnel_prevalence",
    version=1,
    description=(
        "Tunnel-signature watcher: dual-stack sites whose modal IPv6 AS "
        "path looks 1-2 hops long while the IPv4 path is longer — the "
        "apparent shortening 6to4/brokered tunnels cause (Table 7's "
        "low-hop anomaly), as a prevalence fraction per round."
    ),
    required_tables=("paths",),
    headline="prevalence",
)
def tunnel_prevalence(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    n_suspected = 0
    n_population = 0
    short_by_round: dict[int, list[int]] = {}
    for name, _, cdb in _sorted_vantages(repository):
        suspected = 0
        shortenings: list[float] = []
        population = _paths_population(cdb)
        for site_id in population:
            v4 = modal_as_path(cdb, site_id, AddressFamily.IPV4)
            v6 = modal_as_path(cdb, site_id, AddressFamily.IPV6)
            v4_hops, v6_hops = len(v4) - 1, len(v6) - 1
            if 1 <= v6_hops <= TUNNEL_MAX_HOPS and v4_hops > v6_hops:
                suspected += 1
                shortenings.append(float(v4_hops - v6_hops))
        per_vantage[name] = {
            "n_sites": len(population),
            "n_suspected": suspected,
            "prevalence": suspected / len(population) if population else None,
            "mean_apparent_shortening": _mean(shortenings),
        }
        n_suspected += suspected
        n_population += len(population)
        # Per-round share of v6 path observations that look tunnel-short.
        table = cdb.table("paths")
        rows = scan(
            table, (Filter("family", "eq", AddressFamily.IPV6.value),)
        )
        rounds = gather(table, "round", rows)
        path_column = table.column("as_path")
        for row, r in zip(rows, rounds):
            hops = len(path_column.get(row)) - 1
            bucket = short_by_round.setdefault(r, [0, 0])
            bucket[0] += 1 if 1 <= hops <= TUNNEL_MAX_HOPS else 0
            bucket[1] += 1
    short_fraction = {
        r: (short / total) if total else 0.0
        for r, (short, total) in short_by_round.items()
    }
    return {
        "summary": {
            "prevalence": (
                n_suspected / n_population if n_population else None
            ),
            "n_suspected": n_suspected,
            "n_sites": n_population,
        },
        "per_vantage": per_vantage,
        "series": {"short_v6_fraction": _series(short_fraction)},
    }


@register(
    name="failure_watch",
    version=1,
    description=(
        "Injected-failure watcher over the faults table: failure counts "
        "by kind and family, the failure rate per recorded download "
        "row, and the per-round fault count (all zero on faults-off "
        "campaigns)."
    ),
    required_tables=("faults", "downloads"),
    headline="failure_rate",
)
def failure_watch(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    by_kind: dict[str, int] = {}
    by_family: dict[str, int] = {}
    n_faults = 0
    n_downloads = 0
    faults_by_round: dict[int, float] = {}
    for name, _, cdb in _sorted_vantages(repository):
        faults = cdb.table("faults")
        downloads = cdb.table("downloads")
        kinds = run_query(
            cdb,
            Query(
                table="faults",
                group_by=("kind",),
                aggregates=(Aggregate(op="count", alias="n"),),
            ),
        )
        vantage_kinds = dict(
            sorted(zip(kinds.columns["kind"], kinds.columns["n"]))
        )
        families = run_query(
            cdb,
            Query(
                table="faults",
                group_by=("family",),
                aggregates=(Aggregate(op="count", alias="n"),),
            ),
        )
        vantage_families = dict(
            sorted(zip(families.columns["family"], families.columns["n"]))
        )
        rounds = run_query(
            cdb,
            Query(
                table="faults",
                group_by=("round",),
                aggregates=(Aggregate(op="count", alias="n"),),
            ),
        )
        for r, n in zip(rounds.columns["round"], rounds.columns["n"]):
            faults_by_round[r] = faults_by_round.get(r, 0.0) + n
        per_vantage[name] = {
            "n_faults": faults.n_rows,
            "n_downloads": downloads.n_rows,
            "failure_rate": (
                faults.n_rows / downloads.n_rows if downloads.n_rows else None
            ),
            "by_kind": vantage_kinds,
            "by_family": vantage_families,
        }
        n_faults += faults.n_rows
        n_downloads += downloads.n_rows
        for kind, n in vantage_kinds.items():
            by_kind[kind] = by_kind.get(kind, 0) + n
        for family, n in vantage_families.items():
            by_family[family] = by_family.get(family, 0) + n
    return {
        "summary": {
            "failure_rate": n_faults / n_downloads if n_downloads else 0.0,
            "n_faults": n_faults,
            "n_downloads": n_downloads,
        },
        "by_kind": dict(sorted(by_kind.items())),
        "by_family": dict(sorted(by_family.items())),
        "per_vantage": per_vantage,
        "series": {"faults": _series(faults_by_round)},
    }


@register(
    name="hop_inflation",
    version=1,
    description=(
        "AS-path hopcount-inflation index: mean modal-path length per "
        "family over dual-stack sites, their difference (v6 minus v4), "
        "and the Table-7/9 hop-bucket histogram, per round."
    ),
    required_tables=("paths",),
    headline="inflation_hops",
)
def hop_inflation(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    all_hops: dict[str, list[float]] = {f.value: [] for f in _FAMILIES}
    histogram: dict[str, dict[str, int]] = {
        f.value: {bucket: 0 for bucket in BUCKETS} for f in _FAMILIES
    }
    hops_by_round: dict[int, dict[str, list[int]]] = {}
    for name, _, cdb in _sorted_vantages(repository):
        vantage_hops: dict[str, list[float]] = {f.value: [] for f in _FAMILIES}
        for site_id in _paths_population(cdb):
            for family in _FAMILIES:
                path = modal_as_path(cdb, site_id, family)
                hops = len(path) - 1
                if hops < 1:
                    continue
                vantage_hops[family.value].append(float(hops))
                histogram[family.value][bucket_of(hops)] += 1
        v4_mean = _mean(vantage_hops[AddressFamily.IPV4.value])
        v6_mean = _mean(vantage_hops[AddressFamily.IPV6.value])
        per_vantage[name] = {
            "mean_hops_v4": v4_mean,
            "mean_hops_v6": v6_mean,
            "inflation_hops": (
                v6_mean - v4_mean
                if v4_mean is not None and v6_mean is not None
                else None
            ),
        }
        for family_value, values in vantage_hops.items():
            all_hops[family_value].extend(values)
        # Per-round mean path length per family (one scan per vantage).
        table = cdb.table("paths")
        rows = scan(table)
        rounds = gather(table, "round", rows)
        families = gather(table, "family", rows)
        path_column = table.column("as_path")
        for row, r, family_value in zip(rows, rounds, families):
            hops = len(path_column.get(row)) - 1
            hops_by_round.setdefault(r, {}).setdefault(
                family_value, []
            ).append(hops)
    inflation_by_round: dict[int, float] = {}
    for r, families in hops_by_round.items():
        v4 = families.get(AddressFamily.IPV4.value)
        v6 = families.get(AddressFamily.IPV6.value)
        if v4 and v6:
            inflation_by_round[r] = (sum(v6) / len(v6)) - (sum(v4) / len(v4))
    v4_mean = _mean(all_hops[AddressFamily.IPV4.value])
    v6_mean = _mean(all_hops[AddressFamily.IPV6.value])
    return {
        "summary": {
            "mean_hops_v4": v4_mean,
            "mean_hops_v6": v6_mean,
            "inflation_hops": (
                v6_mean - v4_mean
                if v4_mean is not None and v6_mean is not None
                else None
            ),
        },
        "histogram": histogram,
        "per_vantage": per_vantage,
        "series": {"inflation": _series(inflation_by_round)},
    }


@register(
    name="transition_matrix",
    version=1,
    description=(
        "IPv6 transition-mechanism matrix over the transitions table: "
        "per-vantage adoption of native / tunneled / translated (NAT64) "
        "connectivity, the native-vs-NAT64 mean v6 speed gap, and the "
        "per-round translated share (all empty unless the scenario's "
        "DNS64 axis recorded transitions)."
    ),
    required_tables=("transitions", "downloads"),
    headline="translated_share",
)
def transition_matrix(repository: ColumnarRepository) -> dict:
    per_vantage: dict[str, dict] = {}
    total_kinds = {kind: 0 for kind in TRANSITION_KINDS}
    speeds: dict[str, list[float]] = {kind: [] for kind in TRANSITION_KINDS}
    translated_by_round: dict[int, list[int]] = {}
    for name, _, cdb in _sorted_vantages(repository):
        table = cdb.table("transitions")
        rows = scan(table)
        sites = gather(table, "site_id", rows)
        rounds = gather(table, "round", rows)
        kinds = gather(table, "transition", rows)
        # A site's classification follows its most recent round, so a
        # mid-campaign native-IPv6 adopter counts as native, not NAT64.
        latest: dict[int, str] = {}
        for site_id, r, kind in zip(sites, rounds, kinds):
            latest[site_id] = kind
            bucket = translated_by_round.setdefault(r, [0, 0])
            bucket[0] += 1 if kind == "translated" else 0
            bucket[1] += 1
        vantage_kinds = {kind: 0 for kind in TRANSITION_KINDS}
        for site_id in sorted(latest):
            kind = latest[site_id]
            vantage_kinds[kind] += 1
            speed = mean_speed(cdb, site_id, AddressFamily.IPV6)
            if speed is not None:
                speeds[kind].append(speed)
        n_sites = len(latest)
        per_vantage[name] = {
            "n_sites": n_sites,
            "by_kind": vantage_kinds,
            "translated_share": (
                vantage_kinds["translated"] / n_sites if n_sites else None
            ),
        }
        for kind, n in vantage_kinds.items():
            total_kinds[kind] += n
    n_total = sum(total_kinds.values())
    native_speed = _mean(speeds["native"])
    translated_speed = _mean(speeds["translated"])
    translated_share = {
        r: (translated / total) if total else 0.0
        for r, (translated, total) in translated_by_round.items()
    }
    return {
        "summary": {
            "translated_share": (
                total_kinds["translated"] / n_total if n_total else 0.0
            ),
            "n_sites": n_total,
            "by_kind": dict(sorted(total_kinds.items())),
            "native_mean_speed": native_speed,
            "translated_mean_speed": translated_speed,
            "native_over_translated": (
                native_speed / translated_speed
                if native_speed is not None and translated_speed
                else None
            ),
            "tunneled_mean_speed": _mean(speeds["tunneled"]),
        },
        "per_vantage": per_vantage,
        "series": {"translated_share": _series(translated_share)},
    }
