"""Long-horizon trend detection over observer series.

The significance model, in full (documented here and in DESIGN.md, and
applied identically by the runner to every observer series):

* **Steady trend** — an ordinary-least-squares regression of the series
  on round index (:func:`repro.stats.regression.detect_trend`).  A trend
  is flagged when the per-round slope, normalised by the series mean, is
  at least ``slope_threshold`` (default 0.004 = 0.4%/round, the paper's
  Table 3 criterion) *and* the slope's p-value is at most
  ``p_value_threshold`` (default 0.01).
* **Level break** — the series is split into two equal round windows and
  a Student-t 95% confidence interval is formed over each.  A break is
  flagged when the two intervals are disjoint *and* the later window's
  mean differs from the earlier one's by more than ``break_threshold``
  (default 0.10, the paper's comparability band).  Windows need at
  least ``min_window`` points each; shorter series are never flagged.

Both checks are exact arithmetic over the series values — no RNG, no
clock — so the flags are as deterministic as the reports that carry
them.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..stats.intervals import t_confidence_interval
from ..stats.regression import detect_trend

#: the significance model's default parameters (see module docstring).
SLOPE_THRESHOLD = 0.004
P_VALUE_THRESHOLD = 0.01
BREAK_THRESHOLD = 0.10
MIN_WINDOW = 3


@dataclass(frozen=True)
class TrendFlag:
    """One flagged trend or level break on one series."""

    series: str
    kind: str  # "steady_trend" | "level_break"
    direction: int  # +1 up, -1 down
    magnitude: float  # relative slope per round, or relative level shift
    p_value: float | None  # regression p-value; None for level breaks

    def to_payload(self) -> dict:
        return {
            "series": self.series,
            "kind": self.kind,
            "direction": self.direction,
            "magnitude": self.magnitude,
            "p_value": self.p_value,
        }


def steady_trend(name: str, values: list[float]) -> TrendFlag | None:
    """The OLS steady-trend check of the significance model."""
    detection = detect_trend(
        values,
        slope_threshold=SLOPE_THRESHOLD,
        p_value_threshold=P_VALUE_THRESHOLD,
    )
    if detection is None:
        return None
    return TrendFlag(
        series=name,
        kind="steady_trend",
        direction=detection.direction,
        magnitude=detection.relative_slope,
        p_value=detection.p_value,
    )


def level_break(name: str, values: list[float]) -> TrendFlag | None:
    """The two-window level-break check of the significance model."""
    half = len(values) // 2
    if half < MIN_WINDOW:
        return None
    early, late = values[:half], values[half:]
    early_ci = t_confidence_interval(early)
    late_ci = t_confidence_interval(late)
    disjoint = early_ci.high < late_ci.low or late_ci.high < early_ci.low
    if not disjoint or early_ci.mean == 0:
        return None
    shift = (late_ci.mean - early_ci.mean) / abs(early_ci.mean)
    if abs(shift) <= BREAK_THRESHOLD:
        return None
    return TrendFlag(
        series=name,
        kind="level_break",
        direction=1 if shift > 0 else -1,
        magnitude=shift,
        p_value=None,
    )


def flag_series(name: str, values: list[float]) -> list[TrendFlag]:
    """Every flag the significance model raises on one series."""
    flags = []
    for check in (steady_trend, level_break):
        flag = check(name, values)
        if flag is not None:
            flags.append(flag)
    return flags


def analyze_series(series: dict[str, dict]) -> list[dict]:
    """Flags over an observer body's ``series`` section, JSON-ready.

    ``series`` maps metric name to ``{"rounds": [...], "values": [...]}``;
    flags come back sorted by (series name, kind) so the report encoding
    is canonical.
    """
    flags: list[TrendFlag] = []
    for name in sorted(series):
        values = [float(v) for v in series[name].get("values", [])]
        flags.extend(flag_series(name, values))
    flags.sort(key=lambda f: (f.series, f.kind))
    return [flag.to_payload() for flag in flags]
