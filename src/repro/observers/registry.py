"""The observer registry: small, pure, versioned derived-metric functions.

An observer is a pure, deterministic function from a campaign's columnar
data (:class:`~repro.data.columnar.ColumnarRepository`) to a JSON-ready
body dict.  Each declares:

* ``name`` — stable identifier (the serve route and artifact filename);
* ``version`` — bumped whenever the observer's semantics change, so a
  report consumer can tell a recomputation from a redefinition;
* ``required_tables`` — the columnar tables it reads (validated before
  the function runs, so a truncated store entry fails loudly);
* ``headline`` — the key in ``body["summary"]`` that carries the
  observer's single most important scalar (the multi-seed sweep and the
  CLI table lean on this).

Observers never see the world, the RNG, or wall-clock time — only
already-measured data — which is what makes their reports bit-identical
across execution backends and with observability on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..data.columnar import TABLE_SCHEMAS, ColumnarRepository
from ..errors import DataError


@dataclass(frozen=True)
class Observer:
    """One registered derived-metric observer."""

    name: str
    version: int
    description: str
    required_tables: tuple[str, ...]
    headline: str
    fn: Callable[[ColumnarRepository], dict]

    def __post_init__(self) -> None:
        if not self.name:
            raise DataError("observers need a name")
        if not isinstance(self.version, int) or self.version < 1:
            raise DataError(
                f"observer {self.name!r}: version must be a positive integer"
            )
        unknown = [t for t in self.required_tables if t not in TABLE_SCHEMAS]
        if unknown:
            raise DataError(
                f"observer {self.name!r} requires unknown tables {unknown} "
                f"(known: {', '.join(TABLE_SCHEMAS)})"
            )

    def check_tables(self, repository: ColumnarRepository) -> None:
        """Fail loudly when a vantage database misses a required table."""
        for vantage, cdb in repository.databases.items():
            for table in self.required_tables:
                if table not in cdb.tables:
                    raise DataError(
                        f"observer {self.name!r}: vantage {vantage!r} has "
                        f"no table {table!r}"
                    )

    def describe(self) -> dict:
        """JSON-ready registry entry (the ``GET /observers`` listing)."""
        return {
            "name": self.name,
            "version": self.version,
            "description": self.description,
            "required_tables": list(self.required_tables),
            "headline": self.headline,
        }


#: the process-wide registry, in registration order.
_REGISTRY: dict[str, Observer] = {}


def register(
    name: str,
    version: int,
    description: str,
    required_tables: tuple[str, ...],
    headline: str,
) -> Callable[[Callable[[ColumnarRepository], dict]], Callable]:
    """Class-level decorator registering one observer function."""

    def wrap(fn: Callable[[ColumnarRepository], dict]) -> Callable:
        if name in _REGISTRY:
            raise DataError(f"observer {name!r} is already registered")
        _REGISTRY[name] = Observer(
            name=name,
            version=version,
            description=description,
            required_tables=tuple(required_tables),
            headline=headline,
            fn=fn,
        )
        return fn

    return wrap


def get_observer(name: str) -> Observer:
    _ensure_panel_loaded()
    if name not in _REGISTRY:
        raise DataError(
            f"unknown observer {name!r} "
            f"(observers: {', '.join(observer_names())})"
        )
    return _REGISTRY[name]


def observer_names() -> list[str]:
    """Registered observer names, sorted (the canonical panel order)."""
    _ensure_panel_loaded()
    return sorted(_REGISTRY)


def all_observers() -> list[Observer]:
    _ensure_panel_loaded()
    return [_REGISTRY[name] for name in observer_names()]


def _ensure_panel_loaded() -> None:
    """Import the built-in panel exactly once (it self-registers)."""
    from . import panel  # noqa: F401  (import side effect: registration)
