"""Versioned, content-addressed observer reports.

An :class:`ObserverReport` is the unit the observer framework produces:
one observer's derived metrics over one campaign, carried as plain JSON
data with a schema identifier, the observer's declared version, and a
SHA-256 content digest over the canonical encoding.  The digest is the
framework's bit-identity contract — the same campaign data must yield
the same digest no matter which execution backend produced the
campaign, whether observability was enabled, or whether the report was
computed by the CLI, the bench harness, or the serving API.

Canonical encoding = JSON with sorted keys and no whitespace, identical
to the serving layer's response encoding, so a persisted report artifact
can be byte-diffed against a served one.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field

from ..errors import DataError

#: report schema identifier (bump on incompatible layout changes).
REPORT_SCHEMA = "repro.observers/1"


def canonical_json(payload) -> bytes:
    """The byte-stable report encoding (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode(
        "utf-8"
    )


@dataclass(frozen=True)
class ObserverReport:
    """One observer's output over one campaign.

    ``body`` is the observer's JSON-ready result: by convention a
    ``summary`` of headline scalars, a ``per_vantage`` breakdown, a
    ``series`` of per-round trajectories, and (added by the runner) the
    ``trends`` the significance model flagged over those series.
    """

    name: str
    version: int
    campaign_digest: str | None
    body: dict
    schema: str = REPORT_SCHEMA
    #: content digest, derived on construction when not supplied.
    digest: str = field(default="")

    def __post_init__(self) -> None:
        if not self.name:
            raise DataError("observer reports need an observer name")
        if not isinstance(self.version, int) or self.version < 1:
            raise DataError(
                f"observer {self.name!r}: version must be a positive "
                f"integer, got {self.version!r}"
            )
        if not isinstance(self.body, dict):
            raise DataError(f"observer {self.name!r}: body must be a dict")
        expected = _digest_of(
            self.schema, self.name, self.version, self.campaign_digest, self.body
        )
        if not self.digest:
            object.__setattr__(self, "digest", expected)
        elif self.digest != expected:
            raise DataError(
                f"observer report {self.name!r}: digest {self.digest[:12]}… "
                f"does not match its content ({expected[:12]}…)"
            )

    def to_payload(self) -> dict:
        """JSON-ready form (store artifact, serve response, CLI output)."""
        return {
            "schema": self.schema,
            "observer": self.name,
            "version": self.version,
            "campaign_digest": self.campaign_digest,
            "body": self.body,
            "digest": self.digest,
        }

    def canonical_bytes(self) -> bytes:
        """The exact bytes the store persists and the server serves."""
        return canonical_json(self.to_payload())

    @classmethod
    def from_payload(cls, payload: dict) -> "ObserverReport":
        """Rebuild (and re-verify the digest of) a persisted report."""
        if not isinstance(payload, dict):
            raise DataError("observer report payload must be a JSON object")
        schema = payload.get("schema")
        if schema != REPORT_SCHEMA:
            raise DataError(
                f"unsupported observer report schema {schema!r} "
                f"(expected {REPORT_SCHEMA})"
            )
        try:
            return cls(
                name=payload["observer"],
                version=payload["version"],
                campaign_digest=payload.get("campaign_digest"),
                body=payload["body"],
                schema=schema,
                digest=payload.get("digest", ""),
            )
        except KeyError as exc:
            raise DataError(f"observer report payload misses {exc}") from exc


def _digest_of(
    schema: str, name: str, version: int, campaign_digest: str | None, body: dict
) -> str:
    """SHA-256 over the canonical report content (digest field excluded)."""
    content = {
        "schema": schema,
        "observer": name,
        "version": version,
        "campaign_digest": campaign_digest,
        "body": body,
    }
    return hashlib.sha256(canonical_json(content)).hexdigest()
