"""Site performance behaviour over time.

The paper's Table 3 decomposes why sites fail the cross-round confidence
target: not enough samples, a sharp upward/downward *step* in performance
(sometimes coinciding with a path change), or a steady linear *trend*.
These are behaviours of the measured population, so they are modelled
here as properties of a site: a multiplicative factor applied to its
server speed as a function of the monitoring round.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from ..net.addresses import AddressFamily


class BehaviourKind(Enum):
    """How a site's latent performance evolves across rounds."""

    STATIONARY = "stationary"
    STEP_UP = "step_up"
    STEP_DOWN = "step_down"
    TREND_UP = "trend_up"
    TREND_DOWN = "trend_down"

    @property
    def is_step(self) -> bool:
        return self in (BehaviourKind.STEP_UP, BehaviourKind.STEP_DOWN)

    @property
    def is_trend(self) -> bool:
        return self in (BehaviourKind.TREND_UP, BehaviourKind.TREND_DOWN)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class SiteBehaviour:
    """One site's temporal behaviour.

    * step sites multiply speed by ``1 + magnitude`` (up) or
      ``1 / (1 + magnitude)`` (down) from ``change_round`` onward;
    * trend sites drift by ``slope_per_round`` (relative) every round;
    * ``path_change`` marks a step caused by a routing change: the
      recorded AS path of the affected family flips at the same round.
    """

    kind: BehaviourKind
    change_round: int = 0
    magnitude: float = 0.0
    slope_per_round: float = 0.0
    path_change: bool = False
    #: which family a path-change step reroutes (None = both families step).
    affected_family: AddressFamily | None = None

    def __post_init__(self) -> None:
        if self.kind.is_step and self.magnitude <= 0:
            raise ValueError("step behaviours need a positive magnitude")
        if self.kind.is_trend and self.slope_per_round == 0:
            raise ValueError("trend behaviours need a nonzero slope")
        if self.path_change and not self.kind.is_step:
            raise ValueError("only step behaviours can be path changes")

    def multiplier(self, family: AddressFamily, round_idx: int) -> float:
        """Speed factor this behaviour applies at ``round_idx``."""
        if self.affected_family is not None and family is not self.affected_family:
            return 1.0
        if self.kind is BehaviourKind.STATIONARY:
            return 1.0
        if self.kind.is_step:
            if round_idx < self.change_round:
                return 1.0
            if self.kind is BehaviourKind.STEP_UP:
                return 1.0 + self.magnitude
            return 1.0 / (1.0 + self.magnitude)
        # Trend: geometric drift so speed stays positive forever.
        slope = (
            self.slope_per_round
            if self.kind is BehaviourKind.TREND_UP
            else -self.slope_per_round
        )
        return (1.0 + slope) ** round_idx

    def path_changes_at(self, family: AddressFamily, round_idx: int) -> bool:
        """True if the recorded path of ``family`` flips at this round."""
        if not self.path_change:
            return False
        if self.affected_family is not None and family is not self.affected_family:
            return False
        return round_idx >= self.change_round

    @classmethod
    def stationary(cls) -> "SiteBehaviour":
        return cls(kind=BehaviourKind.STATIONARY)
