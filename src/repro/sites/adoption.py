"""IPv6 adoption dynamics.

Fig 1 of the paper shows the fraction of the top-1M that is IPv6
accessible rising from ~0.2% to above 1%, with two visible jumps: the
IANA free-pool depletion announcement (Feb 2011) and World IPv6 Day
(June 2011).  Fig 3a shows adoption is strongly rank-dependent: the
top-10 adopt at ~10x the rate of the list at large.

The model gives every site a monotone adoption probability
``p(rank, round)`` — a base rate boosted per popularity decade and grown
organically per round, with multiplicative jumps at the two event rounds.
A site's *adoption round* is obtained by inverse-CDF sampling against a
single uniform draw, which guarantees monotonicity: once accessible,
always accessible.
"""

from __future__ import annotations

import math
import random

from ..config import AdoptionConfig


class AdoptionModel:
    """Maps (site rank, uniform draw) to the round IPv6 service starts."""

    def __init__(self, config: AdoptionConfig, population: int) -> None:
        config.validate()
        if population < 1:
            raise ValueError("population must be >= 1")
        self.config = config
        self.population = population

    def growth_factor(self, round_idx: int) -> float:
        """Cumulative time factor at ``round_idx`` (organic + events)."""
        factor = self.config.organic_growth ** round_idx
        if round_idx >= self.config.iana_depletion_round:
            factor *= self.config.iana_jump
        if round_idx >= self.config.world_ipv6_day_round:
            factor *= self.config.world_ipv6_day_jump
        return factor

    def rank_factor(self, rank: int) -> float:
        """Popularity boost: ``rank_decade_boost`` per decade above bottom."""
        if rank < 1:
            raise ValueError("ranks start at 1")
        decades_above = math.log10(self.population / rank) if rank <= self.population else 0.0
        return self.config.rank_decade_boost ** max(0.0, decades_above)

    def probability(self, rank: int, round_idx: int) -> float:
        """P(site of ``rank`` is IPv6 accessible by ``round_idx``)."""
        p = self.config.base_adoption * self.rank_factor(rank) * self.growth_factor(
            round_idx
        )
        return min(1.0, p)

    def adoption_round(
        self, rank: int, rng: random.Random, horizon: int
    ) -> int | None:
        """The first round the site is accessible, or None within horizon.

        Inverse-CDF against one uniform draw: the site adopts at the first
        round where its (monotone) probability exceeds the draw.
        """
        draw = rng.random()
        if draw < self.probability(rank, 0):
            return 0
        # The probability is monotone in the round, so scan is correct;
        # jump rounds make binary search awkward for little gain.
        for round_idx in range(1, horizon + 1):
            if draw < self.probability(rank, round_idx):
                return round_idx
        return None

    def expected_fraction(self, round_idx: int, sample_ranks: int = 2000) -> float:
        """Approximate population fraction accessible at ``round_idx``.

        Averages the probability over an evenly-spaced rank sample; used
        for calibration and by the Fig 1 experiment's analytic overlay.
        """
        step = max(1, self.population // sample_ranks)
        ranks = range(1, self.population + 1, step)
        total = sum(self.probability(rank, round_idx) for rank in ranks)
        return total / len(ranks)
