"""The site catalog: every monitored website and its ground truth.

The catalog assembles, per site, everything the substrates need: where it
is hosted (per family), its main page, its server, its CDN subscription,
its temporal behaviour, and when (if ever) it becomes IPv6 accessible.
The monitoring tool never reads the catalog directly — it observes sites
through DNS and downloads, like the paper's tool did — but experiments
and tests use it as ground truth.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from ..config import AdoptionConfig, SiteConfig
from ..dataplane.performance import ThroughputModel
from ..errors import ConfigError
from ..net.addresses import AddressFamily
from ..topology.asys import ASType
from ..topology.dualstack import DualStackTopology
from ..web.cdn import CdnDeployment, CDNProvider
from ..web.page import WebPage
from ..web.server import OriginServer
from .adoption import AdoptionModel
from .behaviour import BehaviourKind, SiteBehaviour
from .ranking import SiteRanking


@dataclass
class Site:
    """Ground truth for one website."""

    site_id: int
    name: str
    origin_asn: int
    #: AS hosting the IPv6 presence (== origin_asn except split hosting).
    v6_origin_asn: int
    page: WebPage
    server: OriginServer
    behaviour: SiteBehaviour
    cdn: CdnDeployment | None = None
    #: first round with a *permanent* AAAA record; None = v4-only within
    #: the horizon (except possibly on World IPv6 Day, below).
    adoption_round: int | None = None
    w6d_participant: bool = False
    #: participant provisioned v6 well enough to offset routing detours.
    w6d_good_v6: bool = False
    #: set for participants that turn AAAA on for the event day only
    #: (most participants famously turned IPv6 off again afterwards).
    w6d_event_round: int | None = None

    @property
    def static_rank(self) -> int:
        """Popularity rank in the site universe (1 = most popular)."""
        return self.site_id + 1

    def v6_accessible_at(self, round_idx: int) -> bool:
        if self.adoption_round is not None and round_idx >= self.adoption_round:
            return True
        return self.w6d_event_round == round_idx

    def dest_asn(self, family: AddressFamily) -> int:
        """The AS a client of ``family`` is served from."""
        if family is AddressFamily.IPV4:
            if self.cdn is not None:
                return self.cdn.provider.asn
            return self.origin_asn
        if self.cdn is not None and self.cdn.provider.dual_stack:
            return self.cdn.provider.asn
        return self.v6_origin_asn

    def final_name(self, family: AddressFamily) -> str:
        """The DNS name the content is served under.

        CDN-fronted sites publish apex A records pointing straight into
        the CDN's AS (the 2011 Akamai pattern), so the name is the site
        name for both families; which *server* answers is family-specific
        (see :meth:`dest_asn`).
        """
        return self.name

    def is_dl(self) -> bool:
        """Different-locations site: v4 and v6 served from different ASes."""
        return self.dest_asn(AddressFamily.IPV4) != self.dest_asn(AddressFamily.IPV6)


@dataclass
class SiteCatalog:
    """All sites plus the ranked list they are sampled from."""

    sites: list[Site]
    ranking: SiteRanking
    cdns: list[CDNProvider] = field(default_factory=list)

    def site(self, site_id: int) -> Site:
        return self.sites[site_id]

    def by_name(self, name: str) -> Site:
        match = self._name_index().get(name)
        if match is None:
            raise KeyError(f"unknown site {name!r}")
        return match

    def _name_index(self) -> dict[str, Site]:
        index = getattr(self, "_names", None)
        if index is None:
            index = {site.name: site for site in self.sites}
            self._names = index
        return index

    def accessible_fraction(self, round_idx: int) -> float:
        """Fraction of the round's ranked list that is IPv6 accessible."""
        listed = self.ranking.list_at_round(round_idx)
        if not listed:
            return 0.0
        accessible = sum(
            1 for sid in listed if self.sites[sid].v6_accessible_at(round_idx)
        )
        return accessible / len(listed)

    def w6d_participants(self) -> list[Site]:
        return [site for site in self.sites if site.w6d_participant]

    def __len__(self) -> int:
        return len(self.sites)


def _page_for(config: SiteConfig, rng: random.Random) -> WebPage:
    mu = math.log(config.page_size_mean) - config.page_size_sigma**2 / 2.0
    size = max(500, int(math.exp(rng.gauss(mu, config.page_size_sigma))))
    if rng.random() < config.different_content_fraction:
        delta = rng.uniform(0.08, 0.40) * (1 if rng.random() < 0.5 else -1)
        v6_size = max(500, int(size * (1.0 + delta)))
        return WebPage(v4_bytes=size, v6_bytes=v6_size)
    return WebPage.same_content(size)


def _behaviour_for(
    config: SiteConfig, n_rounds: int, rng: random.Random
) -> SiteBehaviour:
    draw = rng.random()
    if draw < config.stationary_fraction:
        return SiteBehaviour.stationary()
    change_round = rng.randrange(max(1, n_rounds // 4), max(2, n_rounds))
    if draw < config.stationary_fraction + config.step_fraction:
        kind = BehaviourKind.STEP_UP if rng.random() < 0.5 else BehaviourKind.STEP_DOWN
        path_change = rng.random() < config.step_from_path_change_fraction
        affected = None
        if path_change:
            affected = (
                AddressFamily.IPV6 if rng.random() < 0.7 else AddressFamily.IPV4
            )
        return SiteBehaviour(
            kind=kind,
            change_round=change_round,
            magnitude=rng.uniform(0.4, 0.8),
            path_change=path_change,
            affected_family=affected,
        )
    kind = BehaviourKind.TREND_UP if rng.random() < 0.5 else BehaviourKind.TREND_DOWN
    return SiteBehaviour(
        kind=kind,
        change_round=0,
        slope_per_round=rng.uniform(0.006, 0.02),
    )


def _server_for(
    config: SiteConfig,
    model: ThroughputModel,
    asn: int,
    will_be_dual_stack: bool,
    rng: random.Random,
) -> OriginServer:
    base = model.sample_server_base_speed(rng)
    v6_eff = 1.0
    if will_be_dual_stack and rng.random() < config.server_v6_impaired_fraction:
        v6_eff = min(
            0.85, max(0.2, rng.gauss(config.impaired_efficiency_mean, 0.1))
        )
    return OriginServer(asn=asn, base_speed=base, v6_efficiency=v6_eff)


def build_catalog(
    site_config: SiteConfig,
    adoption_config: AdoptionConfig,
    topo: DualStackTopology,
    model: ThroughputModel,
    n_rounds: int,
    rng: random.Random,
) -> SiteCatalog:
    """Generate the full site universe against a dual-stack topology.

    Placement respects reality constraints: a site can only be IPv6
    accessible if its (v6) hosting AS is v6-enabled, so adopting sites are
    placed into v6-enabled hosting ASes.
    """
    site_config.validate()
    adoption_config.validate()

    hosting_types = (ASType.CONTENT, ASType.STUB)
    hosts_all = sorted(
        asys.asn for asys in topo.base.ases.values() if asys.type in hosting_types
    )
    hosts_v6 = sorted(asn for asn in hosts_all if asn in topo.v6_enabled)
    if not hosts_all:
        raise ConfigError("topology has no content/stub ASes to host sites")
    if not hosts_v6:
        raise ConfigError("no v6-enabled hosting AS; raise v6 enable probabilities")
    # Production sites overwhelmingly run in natively-connected v6 ASes;
    # tunneled (6to4/broker) hosting is the exception.  Keeping a modest
    # tunneled share preserves Table 7's low-hop anomaly without letting
    # tunnel penalties pollute every hop-count bucket.
    tunneled_hosting_fraction = 0.15

    def pick_v6_host(pool: list[int]) -> int:
        native = [a for a in pool if topo.tunnel_of(a) is None]
        tunneled = [a for a in pool if topo.tunnel_of(a) is not None]
        if tunneled and (not native or rng.random() < tunneled_hosting_fraction):
            return rng.choice(tunneled)
        return rng.choice(native or pool)

    content_hosts = [
        asn for asn in hosts_all if topo.base.ases[asn].type is ASType.CONTENT
    ] or hosts_all
    content_hosts_v6 = [
        asn for asn in hosts_v6 if topo.base.ases[asn].type is ASType.CONTENT
    ] or hosts_v6

    cdns = [
        CDNProvider(name=f"cdn{asys.asn}", asn=asys.asn)
        for asys in sorted(
            topo.base.ases_of_type(ASType.CDN), key=lambda a: a.asn
        )
    ]

    ranked_universe = site_config.n_sites + int(
        math.ceil(site_config.churn_rate * site_config.n_sites * n_rounds)
    )
    # Sites beyond the ranked universe form the external pool (never on the
    # top list; fed to monitors with external inputs, i.e. Penn's DNS cache).
    universe = ranked_universe + int(
        round(site_config.external_pool_fraction * site_config.n_sites)
    )
    adoption = AdoptionModel(adoption_config, population=universe)
    eligible_rank = max(1, int(universe * adoption_config.w6d_eligible_rank_fraction))

    sites: list[Site] = []
    for site_id in range(universe):
        rank = site_id + 1
        if site_id >= ranked_universe:
            # External-pool sites are arbitrary DNS-cache names whose
            # popularity is unknown; draw an effective rank uniformly so
            # the pool's adoption mix resembles the wider Internet.
            rank = rng.randrange(1, universe + 1)
        adoption_round = adoption.adoption_round(rank, rng, horizon=n_rounds)

        w6d_participant = False
        w6d_event_round = None
        if (
            site_id < ranked_universe
            and rank <= eligible_rank
            and rng.random() < adoption_config.w6d_participant_fraction
        ):
            w6d_participant = True
            w6d_round = adoption_config.world_ipv6_day_round
            already_on = adoption_round is not None and adoption_round <= w6d_round
            if not already_on:
                if rng.random() < adoption_config.w6d_retention:
                    # Keeps AAAA after the event.
                    adoption_round = w6d_round
                else:
                    # AAAA for the event day only; any later organic
                    # adoption still happens at its own round.
                    w6d_event_round = w6d_round

        dual_stack = adoption_round is not None or w6d_event_round is not None
        # Placement: v6-adopting sites must land in a v6-enabled AS.
        if dual_stack:
            pool = content_hosts_v6 if rng.random() < 0.8 else hosts_v6
            origin_asn = pick_v6_host(pool)
        else:
            pool = content_hosts if rng.random() < 0.8 else hosts_all
            origin_asn = rng.choice(pool)
        v6_origin_asn = origin_asn
        if dual_stack and rng.random() < site_config.split_hosting_fraction:
            others = [asn for asn in hosts_v6 if asn != origin_asn]
            if others:
                v6_origin_asn = rng.choice(others)

        cdn = None
        is_content_host = topo.base.ases[origin_asn].type is ASType.CONTENT
        if cdns and is_content_host and rng.random() < site_config.cdn_fraction:
            cdn = CdnDeployment(provider=rng.choice(cdns))

        server = _server_for(site_config, model, origin_asn, dual_stack, rng)
        behaviour = _behaviour_for(site_config, n_rounds, rng)
        w6d_good_v6 = False
        if w6d_participant:
            # Participants made sure their end-systems were fully IPv6
            # qualified (paper, Section 5.3) - impairments removed.
            server.v6_efficiency = 1.0
            behaviour = SiteBehaviour.stationary()
            w6d_good_v6 = rng.random() < adoption_config.w6d_good_v6_prob

        sites.append(
            Site(
                site_id=site_id,
                name=f"site{site_id:06d}.example",
                origin_asn=origin_asn,
                v6_origin_asn=v6_origin_asn,
                page=_page_for(site_config, rng),
                server=server,
                behaviour=behaviour,
                cdn=cdn,
                adoption_round=adoption_round,
                w6d_participant=w6d_participant,
                w6d_good_v6=w6d_good_v6,
                w6d_event_round=w6d_event_round,
            )
        )

    ranking = SiteRanking(
        universe_size=ranked_universe,
        list_size=site_config.n_sites,
        churn_rate=site_config.churn_rate,
        rng=rng,
    )
    return SiteCatalog(sites=sites, ranking=ranking, cdns=cdns)
