"""The measured website population: catalog, ranking, adoption, behaviour."""

from .behaviour import BehaviourKind, SiteBehaviour
from .adoption import AdoptionModel
from .ranking import SiteRanking
from .catalog import Site, SiteCatalog, build_catalog

__all__ = [
    "BehaviourKind",
    "SiteBehaviour",
    "AdoptionModel",
    "SiteRanking",
    "Site",
    "SiteCatalog",
    "build_catalog",
]
