"""The Alexa-like ranked site list, with churn.

Each monitoring round retrieves "the latest top list".  The list is not
static: sites enter and leave, and the paper notes that churn alone made
the monitored population grow past 2M sites within a year (the monitor
never forgets a site it has seen).  The model keeps a fixed-size ranked
window over a larger site universe and rotates a configurable fraction
in and out every round, deterministically from the RNG stream.
"""

from __future__ import annotations

import random

from ..errors import ConfigError


class SiteRanking:
    """A ranked window of ``list_size`` site ids over a larger universe.

    Site ids are dense integers (0-based).  ``list_at_round(r)`` returns
    the ranked list for round ``r``; rank = index + 1.  The sequence of
    lists is generated lazily and cached, so it is identical no matter
    the order rounds are requested in.
    """

    def __init__(
        self,
        universe_size: int,
        list_size: int,
        churn_rate: float,
        rng: random.Random,
    ) -> None:
        if list_size < 1 or universe_size < list_size:
            raise ConfigError("need universe_size >= list_size >= 1")
        if not 0.0 <= churn_rate < 1.0:
            raise ConfigError("churn_rate must be in [0, 1)")
        self.universe_size = universe_size
        self.list_size = list_size
        self.churn_rate = churn_rate
        self._rng = rng
        #: ids not currently (and never previously) on the list, FIFO reserve.
        self._reserve = list(range(list_size, universe_size))
        self._rng.shuffle(self._reserve)
        self._lists: list[list[int]] = [list(range(list_size))]

    def _advance(self) -> None:
        current = list(self._lists[-1])
        n_churn = min(
            int(round(self.churn_rate * self.list_size)), len(self._reserve)
        )
        if n_churn > 0:
            leave_positions = self._rng.sample(range(self.list_size), n_churn)
            newcomers = [self._reserve.pop() for _ in range(n_churn)]
            for pos, site_id in zip(sorted(leave_positions), newcomers):
                current[pos] = site_id
        self._lists.append(current)

    def list_at_round(self, round_idx: int) -> list[int]:
        """The ranked site-id list of round ``round_idx`` (index 0 = rank 1)."""
        if round_idx < 0:
            raise ConfigError("round index must be >= 0")
        while len(self._lists) <= round_idx:
            self._advance()
        return list(self._lists[round_idx])

    def rank_of(self, site_id: int, round_idx: int) -> int | None:
        """1-based rank of a site in a round's list, or None if absent."""
        current = self.list_at_round(round_idx)
        try:
            return current.index(site_id) + 1
        except ValueError:
            return None

    def first_appearance(self, site_id: int, max_round: int) -> int | None:
        """The first round (<= max_round) the site appears on the list."""
        for round_idx in range(max_round + 1):
            if site_id in set(self.list_at_round(round_idx)):
                return round_idx
        return None

    def ever_listed(self, max_round: int) -> set[int]:
        """All site ids that appear on any list up to ``max_round``."""
        seen: set[int] = set()
        for round_idx in range(max_round + 1):
            seen.update(self.list_at_round(round_idx))
        return seen
