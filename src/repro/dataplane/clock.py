"""Simulation time.

The paper's campaign is organised in *rounds* (roughly weekly; every 30
minutes during World IPv6 Day).  The clock maps rounds to seconds so that
DNS TTLs, monitoring timestamps, and the concurrency scheduler all share
one time base.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError

#: One week, the paper's nominal monitoring cadence.
WEEK_SECONDS = 7 * 24 * 3600.0
#: Thirty minutes, the World IPv6 Day cadence.
HALF_HOUR_SECONDS = 1800.0


@dataclass
class SimulationClock:
    """Maps monitoring rounds to wall-clock seconds."""

    round_interval: float = WEEK_SECONDS
    origin: float = 0.0

    def __post_init__(self) -> None:
        if self.round_interval <= 0:
            raise ConfigError("round_interval must be positive")

    def time_of_round(self, round_idx: int) -> float:
        """Start time of a round."""
        if round_idx < 0:
            raise ConfigError("round index must be >= 0")
        return self.origin + round_idx * self.round_interval

    def round_of_time(self, time: float) -> int:
        """The round in progress at ``time`` (clamped at 0)."""
        if time < self.origin:
            return 0
        return int((time - self.origin) // self.round_interval)

    @classmethod
    def weekly(cls) -> "SimulationClock":
        return cls(round_interval=WEEK_SECONDS)

    @classmethod
    def world_ipv6_day(cls, origin: float = 0.0) -> "SimulationClock":
        return cls(round_interval=HALF_HOUR_SECONDS, origin=origin)
