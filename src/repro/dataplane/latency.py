"""Round-trip time model.

The paper measures download speed, but its successors (Happy Eyeballs
deployment studies, RIPE Atlas comparisons) reason about RTT.  This
model derives RTTs from the same forwarding paths the throughput model
uses: a per-hop propagation/queueing cost, inter-region long-haul
penalties baked into per-AS jitter, and tunnel encapsulation overhead —
family-blind like the rest of the data plane (H1).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..errors import ConfigError
from ..rng import RngStreams
from .path import ForwardingPath


@dataclass(frozen=True)
class LatencyConfig:
    """Parameters of the RTT model."""

    #: base one-way per-hop latency in milliseconds.
    per_hop_ms: float = 8.0
    #: fixed access/serialisation overhead per connection (one-way, ms).
    access_ms: float = 4.0
    #: extra one-way cost of each tunnelled segment (encap/decap + relay).
    tunnel_ms: float = 12.0
    #: lognormal sigma of per-path jitter.
    jitter_sigma: float = 0.10

    def validate(self) -> None:
        if self.per_hop_ms <= 0:
            raise ConfigError("per_hop_ms must be positive")
        if self.access_ms < 0 or self.tunnel_ms < 0:
            raise ConfigError("latency overheads must be >= 0")
        if self.jitter_sigma < 0:
            raise ConfigError("jitter_sigma must be >= 0")


class LatencyModel:
    """Derives RTTs from forwarding paths."""

    def __init__(self, config: LatencyConfig, rngs: RngStreams) -> None:
        config.validate()
        self.config = config
        self._rngs = rngs

    def base_rtt_ms(self, path: ForwardingPath) -> float:
        """Deterministic RTT of a path (before jitter)."""
        one_way = (
            self.config.access_ms
            + self.config.per_hop_ms * max(1, path.effective_hops)
            + self.config.tunnel_ms * len(path.tunnels)
        )
        return 2.0 * one_way

    def sample_rtt_ms(self, path: ForwardingPath, rng: random.Random) -> float:
        """One measured RTT around the base value."""
        base = self.base_rtt_ms(path)
        if self.config.jitter_sigma <= 0:
            return base
        return base * math.exp(rng.gauss(0.0, self.config.jitter_sigma))
