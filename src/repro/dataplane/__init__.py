"""Data plane: forwarding paths, throughput model, simulation clock."""

from .clock import SimulationClock
from .latency import LatencyConfig, LatencyModel
from .path import ForwardingPath
from .performance import ThroughputModel

__all__ = [
    "SimulationClock",
    "LatencyConfig",
    "LatencyModel",
    "ForwardingPath",
    "ThroughputModel",
]
