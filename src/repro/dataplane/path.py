"""Forwarding paths.

A :class:`ForwardingPath` is the data-plane view of a BGP route: the AS
sequence the packets cross, the per-AS quality factors along it, and any
tunnels hiding IPv4 detours inside an apparent single hop.  The crucial
distinction for the paper is **apparent** versus **effective** hop count:
Table 7 buckets by the former while performance follows the latter, which
is how the 1-2 hop IPv6 anomaly arises.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import RoutingError
from ..net.addresses import AddressFamily
from ..net.tunnels import Tunnel
from ..topology.dualstack import DualStackTopology


@dataclass(frozen=True)
class ForwardingPath:
    """The data-plane realisation of one AS path."""

    family: AddressFamily
    as_path: tuple[int, ...]
    #: product of crossed-AS quality factors (source excluded).
    quality: float
    #: tunnels embedded in the path.
    tunnels: tuple[Tunnel, ...]
    #: per-tunnel multiplicative throughput penalty.
    tunnel_quality: float
    #: True for NAT64-translated paths: the apparent IPv6 path ends at
    #: the gateway AS announcing 64:ff9b::/96, and forwarding continues
    #: over an IPv4 leg invisible to BGP (RFC 6146).
    translated: bool = False
    #: hop count of the hidden IPv4 leg behind the NAT64 gateway.
    translation_hidden_hops: int = 0
    #: multiplicative throughput penalty of the stateful translator.
    translation_quality: float = 1.0

    @property
    def apparent_hops(self) -> int:
        """AS-path hop count, as BGP reports it."""
        return len(self.as_path) - 1

    @property
    def hidden_hops(self) -> int:
        """Extra forwarding hops hidden inside tunnels or behind NAT64."""
        return (
            sum(t.extra_hops for t in self.tunnels)
            + self.translation_hidden_hops
        )

    @property
    def effective_hops(self) -> int:
        """Hops the packets actually cross."""
        return self.apparent_hops + self.hidden_hops

    @property
    def total_quality(self) -> float:
        """Path quality including tunnel and translation penalties."""
        return (
            self.quality
            * (self.tunnel_quality ** len(self.tunnels))
            * self.translation_quality
        )

    @property
    def destination(self) -> int:
        return self.as_path[-1]

    @property
    def transition_kind(self) -> str:
        """How this path crosses the v6 Internet (the classifier's axis)."""
        if self.translated:
            return "translated"
        if self.tunnels:
            return "tunneled"
        return "native"

    @classmethod
    def from_as_path(
        cls,
        topo: DualStackTopology,
        as_path: tuple[int, ...],
        family: AddressFamily,
    ) -> "ForwardingPath":
        """Realise an AS path against the topology.

        Quality multiplies the family-specific factor of every AS after
        the source (the networks the traffic transits into).  For IPv6,
        each adjacency implemented by a tunnel is recorded.
        """
        if len(as_path) < 1:
            raise RoutingError("cannot realise an empty AS path")
        quality = 1.0
        for asn in as_path[1:]:
            asys = topo.base.ases.get(asn)
            if asys is None:
                raise RoutingError(f"AS path crosses unknown AS{asn}")
            quality *= asys.quality(family)
        tunnels: list[Tunnel] = []
        if family is AddressFamily.IPV6:
            for a, b in zip(as_path, as_path[1:]):
                tunnel = topo.tunnel_on_edge(a, b)
                if tunnel is not None:
                    tunnels.append(tunnel)
        return cls(
            family=family,
            as_path=tuple(as_path),
            quality=quality,
            tunnels=tuple(tunnels),
            tunnel_quality=topo.config.tunnel_quality,
        )

    def describe(self) -> str:
        """Human-readable one-liner (used by examples and logs)."""
        hops = " ".join(f"AS{a}" for a in self.as_path)
        if self.translated:
            extra = f" (+{self.translation_hidden_hops} translated)"
        elif self.tunnels:
            extra = f" (+{self.hidden_hops} tunneled)"
        else:
            extra = ""
        return f"[{self.family}] {hops}{extra}"
