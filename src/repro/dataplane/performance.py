"""The download-speed model.

The observable the paper reports is the main-page download speed in
kbytes/sec.  We model it as

``speed = server_speed(family, round) * path_factor(path) * noise``

where ``path_factor = 1 / (1 + hop_slowdown * (effective_hops - 1)) *
path.total_quality``.  Two noise scales are separated, matching the
paper's two-level confidence methodology:

* **round noise** — transient congestion shared by all downloads of a
  site within one monitoring round (drawn once per (site, family, round));
* **measurement noise** — per-download jitter, which the repeated-download
  loop of Fig 2 averages away.

The model is deliberately family-blind: nothing here treats IPv6 packets
differently from IPv4 packets on the same path.  That *is* hypothesis H1;
IPv6 ends up slower only through longer paths, tunnels, or weak servers.
"""

from __future__ import annotations

import math
import random
from typing import TYPE_CHECKING

from ..config import PerformanceConfig
from ..rng import RngStreams
from .path import ForwardingPath

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (faults -> config)
    from ..faults.plan import FaultPlan


class ThroughputModel:
    """Samples download speeds for (server, path, round) combinations.

    Round noise is derived deterministically from the master seed and the
    (site, family, round) triple, so any component can recompute it
    without shared mutable state.
    """

    def __init__(
        self,
        config: PerformanceConfig,
        rngs: RngStreams,
        faults: "FaultPlan | None" = None,
    ) -> None:
        config.validate()
        self.config = config
        self._rngs = rngs
        self._faults = faults
        self._round_factors: dict[tuple[int, str, int], float] = {}

    def path_factor(self, path: ForwardingPath) -> float:
        """Multiplicative slowdown of a forwarding path.

        Hop cost saturates at ``hop_saturation``: beyond that, the
        bottleneck link already dominates end-to-end throughput.
        """
        hops = min(max(1, path.effective_hops), self.config.hop_saturation)
        return path.total_quality / (1.0 + self.config.hop_slowdown * (hops - 1))

    def round_factor(self, site_id: int, family, round_idx: int) -> float:
        """Transient congestion factor shared within one round."""
        sigma = self.config.round_noise_sigma
        if sigma <= 0:
            return 1.0
        key = (site_id, family.value, round_idx)
        cached = self._round_factors.get(key)
        if cached is None:
            rng = self._rngs.fresh(f"round-noise:{site_id}:{family.value}:{round_idx}")
            cached = math.exp(rng.gauss(0.0, sigma))
            self._round_factors[key] = cached
        return cached

    def round_mean_speed(
        self,
        server_speed: float,
        path: ForwardingPath,
        site_id: int,
        round_idx: int,
    ) -> float:
        """The latent mean speed (kbytes/sec) for one site-round."""
        if server_speed <= 0:
            raise ValueError("server_speed must be positive")
        speed = (
            server_speed
            * self.path_factor(path)
            * self.round_factor(site_id, path.family, round_idx)
        )
        if self._faults is not None:
            speed *= self._faults.path_degradation(path.as_path, round_idx)
        return speed

    def round_factor_batch(
        self, site_ids: list[int], families: list, round_idx: int
    ) -> list[float]:
        """Batched :meth:`round_factor` over parallel site/family arrays.

        Element-for-element identical to the scalar calls (it shares the
        same per-coordinate memo and private derived streams, so the
        evaluation order cannot perturb any value).
        """
        factor = self.round_factor
        return [
            factor(site_id, family, round_idx)
            for site_id, family in zip(site_ids, families)
        ]

    def round_mean_speed_batch(
        self,
        server_speeds: list[float],
        paths: list[ForwardingPath],
        site_ids: list[int],
        round_idx: int,
    ) -> list[float]:
        """Batched :meth:`round_mean_speed` over parallel arrays.

        The batched execution plane opens a whole round's sessions at
        once; this evaluates their latent means in one pass with the
        scalar method's exact float expressions.
        """
        mean = self.round_mean_speed
        return [
            mean(speed, path, site_id, round_idx)
            for speed, path, site_id in zip(server_speeds, paths, site_ids)
        ]

    def sample_download_speed(
        self, round_mean: float, rng: random.Random
    ) -> float:
        """One download's measured speed around the round mean."""
        sigma = self.config.measurement_noise_sigma
        if sigma <= 0:
            return round_mean
        return round_mean * math.exp(rng.gauss(0.0, sigma))

    def sample_download_speed_batch(
        self, round_mean: float, rng: random.Random, n: int
    ) -> list[float]:
        """``n`` download speeds around one round mean, in draw order.

        Identical to ``n`` :meth:`sample_download_speed` calls on the
        same stream: the underlying Gaussians come from
        :func:`repro.batch.sampling.gauss_block`, which replicates
        ``random.gauss`` bit-for-bit (including the cached partner), so
        the shared stream advances exactly as the scalar loop would.
        """
        sigma = self.config.measurement_noise_sigma
        if sigma <= 0:
            return [round_mean] * n
        from ..batch.sampling import gauss_block

        exp = math.exp
        return [round_mean * exp(g) for g in gauss_block(rng, n, 0.0, sigma)]

    def download_seconds(self, page_bytes: int, speed_kbytes_per_sec: float) -> float:
        """Time to fetch ``page_bytes`` at a given speed."""
        if speed_kbytes_per_sec <= 0:
            raise ValueError("speed must be positive")
        return (page_bytes / 1000.0) / speed_kbytes_per_sec

    def sample_server_base_speed(self, rng: random.Random) -> float:
        """Draw a server's base speed from the configured lognormal."""
        mu = math.log(self.config.server_base_speed_mean)
        sigma = self.config.server_base_speed_sigma
        # Subtract sigma^2/2 so the *mean* (not median) matches the config.
        return math.exp(rng.gauss(mu - sigma * sigma / 2.0, sigma))
