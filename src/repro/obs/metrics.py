"""Process-local metrics: counters, gauges, histograms.

The registry is the reproduction's answer to the paper's MySQL bookkeeping
of "everything the tool did": sites measured, downloads per round,
CI-stopping iterations, DNS cache hits, routes computed, sanitize
rejection causes.  Metrics are plain Python objects updated in place —
an increment is one attribute add — so the instrumented hot paths pay
almost nothing and no seeded RNG stream is ever touched.

``reset()`` zeroes metrics *in place* (object identity is preserved), so
modules may cache their counter objects at import time.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class Counter:
    """A monotonically increasing count (floats allowed for seconds)."""

    name: str
    value: float = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def reset(self) -> None:
        self.value = 0.0

    def as_dict(self) -> dict:
        return {"type": "counter", "value": self.value}


@dataclass
class Gauge:
    """A point-in-time value; tracks its own high-water mark."""

    name: str
    value: float = 0.0
    max_value: float = 0.0
    _touched: bool = False

    def set(self, value: float) -> None:
        self.value = value
        if not self._touched or value > self.max_value:
            self.max_value = value
        self._touched = True

    def update_max(self, value: float) -> None:
        """Record ``value`` only if it raises the high-water mark."""
        if not self._touched or value > self.max_value:
            self.set(value)

    def reset(self) -> None:
        self.value = 0.0
        self.max_value = 0.0
        self._touched = False

    def as_dict(self) -> dict:
        return {"type": "gauge", "value": self.value, "max": self.max_value}


#: Stored-sample cap per histogram; count/sum/min/max stay exact beyond
#: it (percentiles then come from the first ``MAX_SAMPLES`` values).
MAX_SAMPLES = 100_000


@dataclass
class Histogram:
    """A distribution of observed values with percentile queries."""

    name: str
    values: list[float] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min_value: float = 0.0
    max_value: float = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        if self.count == 0 or value < self.min_value:
            self.min_value = value
        if self.count == 0 or value > self.max_value:
            self.max_value = value
        self.count += 1
        self.total += value
        if len(self.values) < MAX_SAMPLES:
            self.values.append(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0-100), linear interpolation."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p}")
        if not self.values:
            return 0.0
        ordered = sorted(self.values)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def reset(self) -> None:
        self.values.clear()
        self.count = 0
        self.total = 0.0
        self.min_value = 0.0
        self.max_value = 0.0

    def as_dict(self) -> dict:
        out = {
            "type": "histogram",
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
        }
        if self.count:
            out.update(
                min=self.min_value,
                max=self.max_value,
                p50=self.percentile(50),
                p90=self.percentile(90),
                p99=self.percentile(99),
            )
        return out


class MetricsRegistry:
    """A flat namespace of metrics, created lazily on first use."""

    def __init__(self) -> None:
        self._metrics: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name=name)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        return sorted(self._metrics)

    def get(self, name: str) -> Counter | Gauge | Histogram | None:
        return self._metrics.get(name)

    def as_dict(self) -> dict:
        """Snapshot of every metric, JSON-ready, sorted by name."""
        return {name: self._metrics[name].as_dict() for name in self.names()}

    def reset(self) -> None:
        """Zero every metric in place (cached references stay valid)."""
        for metric in self._metrics.values():
            metric.reset()


#: The process-local default registry used by the module-level helpers.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def counter(name: str) -> Counter:
    return _REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    return _REGISTRY.gauge(name)


def histogram(name: str) -> Histogram:
    return _REGISTRY.histogram(name)
