"""Serialise a completed run's spans and metrics to a JSON report.

The report is the observability deliverable of a run: per-span-name
aggregates, the full metrics snapshot, and a coarse *phase breakdown*
(world build / routing / rounds / analysis) — the profile the ROADMAP
needs to decide which hot path to attack next.  The layout is the
``BENCH_*.json`` trajectory format: a flat JSON object keyed by
``bench``, so successive PRs can diff phase times across commits.
"""

from __future__ import annotations

import json
import pathlib

from .metrics import MetricsRegistry, get_registry
from .trace import Span, Tracer, get_tracer

#: Report schema identifier (bump on incompatible layout changes).
SCHEMA = "repro.obs/1"

#: The pipeline's coarse phases: (label, span name, fallback seconds
#: counter, fallback count counter).  A phase's time comes from the total
#: of its spans; ``bgp.compute`` time is additionally accumulated in a
#: counter because route computations are demand-driven (they fire
#: *inside* monitoring rounds, even with tracing off).
PHASES = (
    ("world build", "world.build", None, None),
    ("routing", "bgp.compute", "bgp.compute_seconds", "bgp.route_computations"),
    ("rounds", "campaign.run", None, None),
    ("analysis", "analysis.contexts", None, None),
)


def aggregate_spans(spans: list[Span]) -> dict[str, dict]:
    """Per-name aggregates over completed spans."""
    out: dict[str, dict] = {}
    for span in spans:
        if span.end is None:
            continue
        entry = out.get(span.name)
        if entry is None:
            out[span.name] = {
                "count": 1,
                "total_s": span.duration,
                "min_s": span.duration,
                "max_s": span.duration,
            }
        else:
            entry["count"] += 1
            entry["total_s"] += span.duration
            entry["min_s"] = min(entry["min_s"], span.duration)
            entry["max_s"] = max(entry["max_s"], span.duration)
    for entry in out.values():
        entry["mean_s"] = entry["total_s"] / entry["count"]
    return dict(sorted(out.items()))


def phase_breakdown(
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
) -> list[dict]:
    """Coarse phase times: world build / routing / rounds / analysis."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    rows = []
    for label, span_name, seconds_counter, count_counter in PHASES:
        spans = tracer.completed(span_name)
        seconds = sum(s.duration for s in spans)
        count = len(spans)
        if count == 0 and seconds_counter is not None:
            metric = registry.get(seconds_counter)
            if metric is not None:
                seconds = metric.value
            if count_counter is not None:
                count = int(getattr(registry.get(count_counter), "value", 0) or 0)
        rows.append({"phase": label, "seconds": seconds, "count": count})
    return rows


def build_report(
    bench: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    meta: dict | None = None,
    include_spans: bool = False,
) -> dict:
    """The full JSON-ready observability report for one run."""
    tracer = tracer if tracer is not None else get_tracer()
    registry = registry if registry is not None else get_registry()
    report = {
        "bench": bench,
        "schema": SCHEMA,
        "phases": phase_breakdown(tracer, registry),
        "spans": aggregate_spans(tracer.spans),
        "metrics": registry.as_dict(),
        "dropped_spans": tracer.dropped,
    }
    if meta:
        report["meta"] = dict(meta)
    if include_spans:
        report["span_events"] = [s.as_dict() for s in tracer.spans]
    return report


def write_report(
    path: str | pathlib.Path,
    bench: str,
    tracer: Tracer | None = None,
    registry: MetricsRegistry | None = None,
    meta: dict | None = None,
    include_spans: bool = False,
) -> pathlib.Path:
    """Write :func:`build_report` output to ``path``; returns the path."""
    report = build_report(
        bench, tracer=tracer, registry=registry, meta=meta,
        include_spans=include_spans,
    )
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n",
                   encoding="utf-8")
    return out


def read_report(path: str | pathlib.Path) -> dict:
    """Load a report written by :func:`write_report`."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


def render_breakdown(report: dict) -> str:
    """Fixed-width phase + top-span table for terminal display."""
    lines = []
    phases = report.get("phases", [])
    total = sum(p["seconds"] for p in phases)
    lines.append(f"phase breakdown ({report.get('bench', '?')})")
    lines.append(f"{'phase':<14} {'seconds':>9} {'share':>7} {'count':>7}")
    for entry in phases:
        share = entry["seconds"] / total if total > 0 else 0.0
        lines.append(
            f"{entry['phase']:<14} {entry['seconds']:>9.3f} "
            f"{100 * share:>6.1f}% {entry['count']:>7d}"
        )
    spans = report.get("spans", {})
    if spans:
        lines.append("")
        lines.append(f"{'span':<28} {'count':>7} {'total_s':>9} {'mean_ms':>9}")
        ranked = sorted(
            spans.items(), key=lambda item: item[1]["total_s"], reverse=True
        )
        for name, entry in ranked[:12]:
            lines.append(
                f"{name:<28} {entry['count']:>7d} {entry['total_s']:>9.3f} "
                f"{1000 * entry['mean_s']:>9.3f}"
            )
    return "\n".join(lines)
