"""Structured logging setup.

Per-subsystem loggers under the ``repro`` namespace with a structured
formatter: either ``key=value`` pairs (the default, grep-friendly) or one
JSON object per line.  All log output goes to **stderr**, so enabling
logging never perturbs an experiment's stdout (seeded results stay
bit-identical with observability on or off).

Nothing is configured at import time; call :func:`setup_logging` (the CLI
does, from ``--log-level``) or attach handlers yourself.
"""

from __future__ import annotations

import json
import logging
import sys

#: Root of the package logger hierarchy.
ROOT_LOGGER = "repro"


def get_logger(subsystem: str) -> logging.Logger:
    """The logger for one subsystem (e.g. ``core.world``, ``monitor``)."""
    if not subsystem:
        return logging.getLogger(ROOT_LOGGER)
    return logging.getLogger(f"{ROOT_LOGGER}.{subsystem}")


class KeyValueFormatter(logging.Formatter):
    """``ts=... level=... logger=... msg="..." extra_key=value`` lines."""

    def format(self, record: logging.LogRecord) -> str:
        parts = [
            f"ts={self.formatTime(record, datefmt='%H:%M:%S')}",
            f"level={record.levelname}",
            f"logger={record.name}",
            f'msg="{record.getMessage()}"',
        ]
        for key, value in _extra_fields(record).items():
            parts.append(f"{key}={value}")
        if record.exc_info:
            parts.append(f'exc="{self.formatException(record.exc_info)}"')
        return " ".join(parts)


class JsonFormatter(logging.Formatter):
    """One JSON object per line."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": self.formatTime(record, datefmt="%H:%M:%S"),
            "level": record.levelname,
            "logger": record.name,
            "msg": record.getMessage(),
        }
        payload.update(_extra_fields(record))
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


#: LogRecord attributes that are bookkeeping, not user-supplied fields.
_STANDARD_ATTRS = frozenset(
    vars(
        logging.LogRecord("x", logging.INFO, "x", 0, "x", None, None)
    )
) | {"message", "asctime", "taskName"}


def _extra_fields(record: logging.LogRecord) -> dict:
    """Fields passed via ``logger.info(..., extra={...})``."""
    return {
        key: value
        for key, value in vars(record).items()
        if key not in _STANDARD_ATTRS
    }


def setup_logging(
    level: str | int = "WARNING",
    fmt: str = "kv",
    stream=None,
) -> logging.Logger:
    """Attach one structured stderr handler to the ``repro`` logger.

    Idempotent: re-running replaces the previously attached handler, so
    repeated CLI invocations in one process do not duplicate output.
    """
    if isinstance(level, str):
        level = getattr(logging, level.upper(), None)
        if level is None:
            raise ValueError(f"unknown log level {level!r}")
    if fmt == "kv":
        formatter: logging.Formatter = KeyValueFormatter()
    elif fmt == "json":
        formatter = JsonFormatter()
    else:
        raise ValueError(f"unknown log format {fmt!r} (use 'kv' or 'json')")

    root = logging.getLogger(ROOT_LOGGER)
    for handler in list(root.handlers):
        if getattr(handler, "_repro_obs", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(formatter)
    handler._repro_obs = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(level)
    root.propagate = False
    return root
