"""Lightweight span-based tracing.

The paper's monitoring tool logged every pipeline phase to MySQL so that
failures and time could be attributed; this module gives the reproduction
the same capability as an in-process tracer::

    with span("campaign.round", round=i):
        ...

Spans nest (the tracer keeps a stack), carry free-form attributes, and are
timed against an *injectable monotonic clock* so traces are testable and
simulation-deterministic.  Tracing is **disabled by default** and a
disabled tracer costs one attribute check per ``span()`` call — no clock
reads, no allocations — so instrumented hot paths stay effectively free.

Instrumentation never touches any seeded RNG stream: enabling or
disabling tracing cannot change a measured value.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

#: Default cap on retained spans; beyond it spans are counted, not stored,
#: so long campaigns cannot exhaust memory through instrumentation.
MAX_SPANS = 100_000


@dataclass
class Span:
    """One completed (or active) timed region."""

    name: str
    attrs: dict
    start: float
    depth: int
    end: float | None = None

    @property
    def duration(self) -> float:
        """Elapsed seconds (0.0 while the span is still open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def as_dict(self) -> dict:
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "depth": self.depth,
        }


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    name = None
    attrs: dict = {}
    start = 0.0
    end = 0.0
    depth = 0
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager recording one span on its tracer."""

    __slots__ = ("_tracer", "span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self.span = span

    def __enter__(self) -> Span:
        return self.span

    def __exit__(self, *exc) -> bool:
        self._tracer._finish(self.span)
        return False


@dataclass
class Tracer:
    """A span recorder with an injectable monotonic clock."""

    clock: Callable[[], float] = time.perf_counter
    enabled: bool = False
    max_spans: int = MAX_SPANS
    spans: list[Span] = field(default_factory=list)
    #: spans observed after the cap was hit (they are timed out of band).
    dropped: int = 0
    _stack: list[Span] = field(default_factory=list)

    def span(self, name: str, **attrs) -> _ActiveSpan | _NullSpan:
        """Open a timed region; use as a context manager."""
        if not self.enabled:
            return _NULL_SPAN
        span = Span(
            name=name,
            attrs=attrs,
            start=self.clock(),
            depth=len(self._stack),
        )
        if len(self.spans) < self.max_spans:
            self.spans.append(span)
        else:
            self.dropped += 1
        self._stack.append(span)
        return _ActiveSpan(self, span)

    def _finish(self, span: Span) -> None:
        span.end = self.clock()
        # Close any dangling children too (exceptions unwound past them).
        while self._stack and self._stack[-1] is not span:
            dangling = self._stack.pop()
            if dangling.end is None:
                dangling.end = span.end
        if self._stack and self._stack[-1] is span:
            self._stack.pop()

    # -- inspection ---------------------------------------------------------

    @property
    def current(self) -> Span | None:
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def completed(self, name: str | None = None) -> list[Span]:
        """Completed spans, optionally filtered by name."""
        out = [s for s in self.spans if s.end is not None]
        if name is not None:
            out = [s for s in out if s.name == name]
        return out

    def total_seconds(self, name: str) -> float:
        """Sum of durations of completed spans named ``name``."""
        return sum(s.duration for s in self.completed(name))

    def reset(self) -> None:
        """Drop all recorded spans and close the stack."""
        self.spans.clear()
        self._stack.clear()
        self.dropped = 0


#: The process-local default tracer used by the module-level helpers.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    """The process-local default tracer."""
    return _TRACER


def span(name: str, **attrs) -> _ActiveSpan | _NullSpan:
    """Open a span on the default tracer (no-op while disabled)."""
    if not _TRACER.enabled:
        return _NULL_SPAN
    return _TRACER.span(name, **attrs)


def enable(clock: Callable[[], float] | None = None) -> Tracer:
    """Enable the default tracer (optionally with an injected clock)."""
    if clock is not None:
        _TRACER.clock = clock
    _TRACER.enabled = True
    return _TRACER


def disable() -> None:
    """Disable the default tracer (recorded spans are kept)."""
    _TRACER.enabled = False


def tracing_enabled() -> bool:
    return _TRACER.enabled
