"""Observability: structured tracing, metrics, logging, and profiling.

The reproduction's equivalent of the paper's MySQL-backed bookkeeping
(its monitoring tool logged every DNS lookup, identity check, and
download attempt so failures could be attributed).  Four pieces:

* :mod:`repro.obs.trace` — span-based tracing with an injectable clock;
* :mod:`repro.obs.metrics` — process-local counters/gauges/histograms;
* :mod:`repro.obs.log` — stdlib-``logging`` with structured formatters;
* :mod:`repro.obs.export` — JSON reports in the ``BENCH_*.json`` format.

Everything is zero-cost-ish when disabled and touches no seeded RNG
stream: seeded results are bit-identical with observability on or off.
"""

from .log import get_logger, setup_logging
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter,
    gauge,
    get_registry,
    histogram,
)
from .trace import (
    Span,
    Tracer,
    disable,
    enable,
    get_tracer,
    span,
    tracing_enabled,
)
from .export import (
    SCHEMA,
    build_report,
    phase_breakdown,
    read_report,
    render_breakdown,
    write_report,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SCHEMA",
    "Span",
    "Tracer",
    "build_report",
    "counter",
    "disable",
    "enable",
    "gauge",
    "get_logger",
    "get_registry",
    "get_tracer",
    "histogram",
    "phase_breakdown",
    "read_report",
    "render_breakdown",
    "setup_logging",
    "span",
    "tracing_enabled",
    "write_report",
]


def reset() -> None:
    """Reset the default tracer and registry (tests use this)."""
    get_tracer().reset()
    get_registry().reset()
