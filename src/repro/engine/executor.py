"""Executors: how a batch of campaign shards actually runs.

Two backends behind one interface:

* :class:`SerialExecutor` — runs shards one after another in-process,
  reusing the caller's already-built world.  The default, and what every
  pre-engine code path reduces to.
* :class:`ParallelExecutor` — fans shards out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Workers receive only
  the pickled shard; each rebuilds the world from the shard's config once
  and caches it for subsequent shards (see
  :data:`repro.engine.shard._WORLD_CACHE`).

Both return :class:`~repro.engine.shard.ShardResult` lists in shard
order, and — because per-vantage RNG streams are isolated — both produce
bit-identical measurement repositories for the same scenario config.
"""

from __future__ import annotations

import concurrent.futures

from ..config import ExecutionConfig
from ..errors import EngineError
from ..obs import get_logger, metrics
from .shard import ShardResult, VantageShard, execute_shard

_LOG = get_logger("engine.executor")

#: engine counters (module-cached: ``obs`` resets metrics in place).
_SHARDS_DISPATCHED = metrics.counter("engine.shards_dispatched")
_SHARD_SECONDS = metrics.histogram("engine.shard_seconds")
_JOBS_GAUGE = metrics.gauge("engine.jobs")


class Executor:
    """Runs a batch of shards; subclasses choose where the work happens."""

    name = "base"

    def run(
        self, shards: list[VantageShard], world=None
    ) -> list[ShardResult]:
        raise NotImplementedError

    def _record(self, results: list[ShardResult]) -> list[ShardResult]:
        _SHARDS_DISPATCHED.inc(len(results))
        for result in results:
            _SHARD_SECONDS.observe(result.wall_seconds)
        return results


class SerialExecutor(Executor):
    """In-process, one shard after another (the default backend)."""

    name = "serial"

    def run(
        self, shards: list[VantageShard], world=None
    ) -> list[ShardResult]:
        _JOBS_GAUGE.set(1)
        return self._record(
            [execute_shard(shard, world=world) for shard in shards]
        )


class ParallelExecutor(Executor):
    """Process-pool backed fan-out over ``jobs`` worker processes."""

    name = "process"

    def __init__(self, jobs: int = 2) -> None:
        if jobs < 1:
            raise EngineError("ParallelExecutor needs jobs >= 1")
        self.jobs = jobs

    def run(
        self, shards: list[VantageShard], world=None
    ) -> list[ShardResult]:
        if not shards:
            return []
        workers = min(self.jobs, len(shards))
        if workers == 1:
            # One worker means no parallelism to buy; skip the pool (and
            # its world rebuild) and run in-process on the given world.
            _LOG.info("single job requested; running shards in-process")
            return SerialExecutor().run(shards, world=world)
        _JOBS_GAUGE.set(workers)
        _LOG.info(
            "dispatching shards to process pool",
            extra={"shards": len(shards), "jobs": workers},
        )
        with concurrent.futures.ProcessPoolExecutor(max_workers=workers) as pool:
            results = list(pool.map(execute_shard, shards))
        return self._record(results)


def make_executor(execution: ExecutionConfig | None = None) -> Executor:
    """Build the executor an :class:`ExecutionConfig` asks for.

    ``None`` falls back to :meth:`ExecutionConfig.from_env`, so
    ``REPRO_BACKEND=process REPRO_JOBS=4`` parallelises every campaign in
    the process — including the test suite — without code changes.
    """
    if execution is None:
        execution = ExecutionConfig.from_env()
    execution.validate()
    if execution.backend == "process":
        return ParallelExecutor(jobs=execution.jobs)
    return SerialExecutor()
