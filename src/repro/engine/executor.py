"""Executors: how a batch of campaign shards actually runs.

Two backends behind one interface:

* :class:`SerialExecutor` — runs shards one after another in-process,
  reusing the caller's already-built world.  The default, and what every
  pre-engine code path reduces to.
* :class:`ParallelExecutor` — fans shards out to a
  :class:`concurrent.futures.ProcessPoolExecutor`.  Workers receive only
  the pickled shard; each rebuilds the world from the shard's config once
  and caches it for subsequent shards (see
  :data:`repro.engine.shard._WORLD_CACHE`).

Both return :class:`~repro.engine.shard.ShardResult` lists in shard
order, and — because per-vantage RNG streams are isolated — both produce
bit-identical measurement repositories for the same scenario config.
"""

from __future__ import annotations

import concurrent.futures

from ..config import ExecutionConfig
from ..errors import EngineError
from ..obs import get_logger, metrics
from .shard import ShardResult, VantageShard, execute_shard

_LOG = get_logger("engine.executor")

#: engine counters (module-cached: ``obs`` resets metrics in place).
_SHARDS_DISPATCHED = metrics.counter("engine.shards_dispatched")
_SHARD_SECONDS = metrics.histogram("engine.shard_seconds")
_JOBS_GAUGE = metrics.gauge("engine.jobs")
_SHARD_RETRIES = metrics.counter("engine.shard_retries")
_SHARDS_DEGRADED = metrics.counter("engine.shards_degraded")


class Executor:
    """Runs a batch of shards; subclasses choose where the work happens."""

    name = "base"

    def run(
        self, shards: list[VantageShard], world=None
    ) -> list[ShardResult]:
        raise NotImplementedError

    def _record(self, results: list[ShardResult]) -> list[ShardResult]:
        _SHARDS_DISPATCHED.inc(len(results))
        for result in results:
            _SHARD_SECONDS.observe(result.wall_seconds)
        return results


class SerialExecutor(Executor):
    """In-process, one shard after another (the default backend)."""

    name = "serial"

    def run(
        self, shards: list[VantageShard], world=None
    ) -> list[ShardResult]:
        _JOBS_GAUGE.set(1)
        return self._record(
            [execute_shard(shard, world=world) for shard in shards]
        )


class ParallelExecutor(Executor):
    """Process-pool backed fan-out over ``jobs`` worker processes.

    A worker that raises — or dies outright, taking the pool with it
    (``BrokenProcessPool``) — does not abort the campaign: the failed
    shard is resubmitted up to ``shard_retries`` times to a fresh pool,
    and whatever still fails is re-run serially in this process (graceful
    degradation; determinism makes the result identical to the worker's).
    """

    name = "process"

    def __init__(self, jobs: int = 2, shard_retries: int = 1) -> None:
        if jobs < 1:
            raise EngineError("ParallelExecutor needs jobs >= 1")
        if shard_retries < 0:
            raise EngineError("ParallelExecutor needs shard_retries >= 0")
        self.jobs = jobs
        self.shard_retries = shard_retries

    def run(
        self, shards: list[VantageShard], world=None
    ) -> list[ShardResult]:
        if not shards:
            return []
        workers = min(self.jobs, len(shards))
        if workers == 1:
            # One worker means no parallelism to buy; skip the pool (and
            # its world rebuild) and run in-process on the given world.
            _LOG.info("single job requested; running shards in-process")
            return SerialExecutor().run(shards, world=world)
        _JOBS_GAUGE.set(workers)
        _LOG.info(
            "dispatching shards to process pool",
            extra={"shards": len(shards), "jobs": workers},
        )
        results: dict[int, ShardResult] = {}
        pending = list(enumerate(shards))
        for round_no in range(self.shard_retries + 1):
            if not pending:
                break
            if round_no:
                _SHARD_RETRIES.inc(len(pending))
                _LOG.warning(
                    "retrying failed shards in a fresh pool",
                    extra={
                        "attempt": round_no,
                        "shards": [s.vantage_name for _, s in pending],
                    },
                )
            pending = self._pool_round(pending, workers, results)
        for idx, shard in pending:
            # Out of pool retries: degrade gracefully to in-process
            # execution rather than aborting the whole campaign.
            _SHARDS_DEGRADED.inc()
            _LOG.warning(
                "worker kept failing; running shard in-process",
                extra={"vantage": shard.vantage_name},
            )
            results[idx] = execute_shard(shard, world=world)
        return self._record([results[i] for i in range(len(shards))])

    def _pool_round(
        self,
        pending: list[tuple[int, VantageShard]],
        workers: int,
        results: dict[int, ShardResult],
    ) -> list[tuple[int, VantageShard]]:
        """One pool pass over ``pending``; returns the shards that failed."""
        failed: list[tuple[int, VantageShard]] = []
        with concurrent.futures.ProcessPoolExecutor(
            max_workers=min(workers, len(pending))
        ) as pool:
            futures = {
                pool.submit(execute_shard, shard): (idx, shard)
                for idx, shard in pending
            }
            for future in concurrent.futures.as_completed(futures):
                idx, shard = futures[future]
                try:
                    results[idx] = future.result()
                except concurrent.futures.process.BrokenProcessPool:
                    # The dead worker takes every in-flight future down;
                    # collect all still-unfinished shards and stop waiting.
                    _LOG.warning(
                        "process pool broke mid-campaign",
                        extra={"vantage": shard.vantage_name},
                    )
                    failed = [
                        (i, s)
                        for f, (i, s) in futures.items()
                        if i not in results and (i, s) not in failed
                    ]
                    break
                except Exception as exc:
                    _LOG.warning(
                        "shard failed in worker",
                        extra={
                            "vantage": shard.vantage_name,
                            "error": repr(exc),
                        },
                    )
                    failed.append((idx, shard))
        failed.sort()
        return failed


def make_executor(execution: ExecutionConfig | None = None) -> Executor:
    """Build the executor an :class:`ExecutionConfig` asks for.

    ``None`` falls back to :meth:`ExecutionConfig.from_env`, so
    ``REPRO_BACKEND=process REPRO_JOBS=4`` parallelises every campaign in
    the process — including the test suite — without code changes.
    """
    if execution is None:
        execution = ExecutionConfig.from_env()
    execution.validate()
    if execution.backend == "process":
        return ParallelExecutor(
            jobs=execution.jobs, shard_retries=execution.shard_retries
        )
    return SerialExecutor()
