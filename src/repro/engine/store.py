"""The on-disk campaign store (the cache's second tier).

``experiments.scenario`` used to cache campaigns in process memory only,
so every CLI invocation rebuilt the world and re-ran the campaign from
scratch.  :class:`CampaignStore` persists a completed campaign under
``.repro-cache/`` keyed by a stable content digest of its
:class:`~repro.config.ScenarioConfig`, so a second ``repro run-all`` with
an intact cache directory skips both the world build and the campaign.

Layout (one directory per campaign)::

    <root>/campaigns/<digest>/
        meta.json          store format, digest, kind, config snapshot
        repository.json    CentralRepository.to_dict() (every table)
        columnar.json      ColumnarRepository payload (repro.data)
        columnar.bin       binary columnar artifact (fast cold loads)
        reports.json       per-vantage RoundReport dicts
        world.pkl          pickled World (best effort; absent ok)
        observers/<name>.json   canonical ObserverReport artifacts

``repository.json`` and ``reports.json`` are the same compact dict forms
shard results use to cross process boundaries, so a store entry is
readable without this package's monitor.  The world pickle is an
optimisation only: when it is missing or unreadable the world is rebuilt
from the config and the stored measurement data is still used.

``columnar.bin`` is the load-time fast path: the serving layer decodes
it lazily (table granularity, zero-copy buffers) with its sha256
verified on every load.  A corrupt or truncated binary is a *warned
fallback*, not a miss — ``columnar.json`` remains the canonical
interchange form and is transposed from ``repository.json`` when even
that is absent.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import pickle
from dataclasses import dataclass

from ..config import ScenarioConfig
from ..errors import ReproError
from ..monitor.aggregate import CentralRepository
from ..monitor.database import SERIAL_FORMAT
from ..monitor.tool import RoundReport
from ..obs import get_logger, metrics, span

_LOG = get_logger("engine.store")

#: store layout version; bumped on incompatible changes (also part of the
#: digest, so old entries simply miss instead of failing to parse).
STORE_FORMAT = 1

#: default cache root, overridable via the ``REPRO_CACHE_DIR`` env var.
DEFAULT_CACHE_ROOT = ".repro-cache"

#: disk-tier effectiveness counters (module-cached; obs resets in place).
_STORE_HITS = metrics.counter("engine.store.hits")
_STORE_MISSES = metrics.counter("engine.store.misses")
_STORE_WRITES = metrics.counter("engine.store.writes")
#: binary-artifact counters: loads served from columnar.bin, and warned
#: fallbacks to JSON after a corrupt/unreadable binary (gated to zero).
_BIN_LOADS = metrics.counter("engine.store.bin_loads")
_BIN_FALLBACKS = metrics.counter("engine.store.bin_fallbacks")

#: the columnar artifact files a store entry may carry, preferred first.
COLUMNAR_ARTIFACTS = ("columnar.bin", "columnar.json")


def config_digest(config: ScenarioConfig, kind: str = "weekly") -> str:
    """Stable content digest identifying one campaign.

    SHA-256 over the canonical JSON of the config's full field tree plus
    the store and database format versions and the campaign kind — the
    same scenario always maps to the same directory, across processes and
    Python versions, and format bumps invalidate cleanly.
    """
    payload = {
        "store_format": STORE_FORMAT,
        "database_format": SERIAL_FORMAT,
        "kind": kind,
        "config": dataclasses.asdict(config),
    }
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class StoredCampaign:
    """A campaign loaded back from the store."""

    digest: str
    kind: str
    repository: CentralRepository
    reports: dict[str, list[RoundReport]]
    #: the unpickled world, or None when only measurement data survived.
    world: object | None


@dataclass(frozen=True)
class StoreEntry:
    """One campaign directory's identity (meta.json, no table data)."""

    digest: str
    kind: str
    seed: int | None
    repository_digest: str | None
    path: pathlib.Path
    #: meta.json modification time (entries are ordered newest first).
    mtime: float = 0.0

    @property
    def size_bytes(self) -> int:
        """Total bytes of the entry's files (best effort)."""
        total = 0
        try:
            for child in self.path.iterdir():
                try:
                    total += child.stat().st_size
                except OSError:
                    continue
        except OSError:
            pass
        return total

    def artifact_sizes(self) -> dict[str, int]:
        """Bytes per columnar artifact present (``repro cache ls``)."""
        sizes: dict[str, int] = {}
        for name in COLUMNAR_ARTIFACTS:
            try:
                sizes[name] = (self.path / name).stat().st_size
            except OSError:
                continue
        return sizes


class CampaignStore:
    """Content-addressed campaign persistence under one root directory."""

    def __init__(self, root: str | pathlib.Path = DEFAULT_CACHE_ROOT) -> None:
        self.root = pathlib.Path(root)

    def entry_dir(self, digest: str) -> pathlib.Path:
        return self.root / "campaigns" / digest

    def has(self, config: ScenarioConfig, kind: str = "weekly") -> bool:
        return (self.entry_dir(config_digest(config, kind)) / "meta.json").exists()

    # -- enumerate -----------------------------------------------------------

    def entries(self) -> list[StoreEntry]:
        """Every valid store entry, newest first (``repro cache ls``)."""
        campaigns = self.root / "campaigns"
        if not campaigns.is_dir():
            return []
        found: list[StoreEntry] = []
        for entry_dir in sorted(campaigns.iterdir()):
            meta_path = entry_dir / "meta.json"
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if meta.get("store_format") != STORE_FORMAT:
                    continue
                found.append(
                    StoreEntry(
                        digest=meta.get("digest", entry_dir.name),
                        kind=meta.get("kind", "unknown"),
                        seed=meta.get("seed"),
                        repository_digest=meta.get("repository_digest"),
                        path=entry_dir,
                        mtime=meta_path.stat().st_mtime,
                    )
                )
            except (OSError, ValueError, AttributeError):
                # No/unreadable meta.json: not a valid entry; skip.
                continue
        found.sort(key=lambda e: (-e.mtime, e.digest))
        return found

    def prune(self, keep_latest: int) -> list[StoreEntry]:
        """Delete all but the newest ``keep_latest`` entries; returns the
        removed entries (``repro cache prune``)."""
        import shutil

        if keep_latest < 0:
            raise ValueError(f"keep_latest must be >= 0, got {keep_latest}")
        doomed = self.entries()[keep_latest:]
        for entry in doomed:
            shutil.rmtree(entry.path, ignore_errors=True)
            _LOG.info(
                "pruned store entry",
                extra={"digest": entry.digest[:12], "dir": str(entry.path)},
            )
        return doomed

    # -- load --------------------------------------------------------------

    def load(
        self, config: ScenarioConfig, kind: str = "weekly"
    ) -> StoredCampaign | None:
        """Load the stored campaign for ``config``, or None on a miss."""
        digest = config_digest(config, kind)
        entry = self.entry_dir(digest)
        meta_path = entry / "meta.json"
        if not meta_path.exists():
            _STORE_MISSES.inc()
            return None
        with span("engine.store.load", digest=digest[:12], kind=kind):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if meta.get("store_format") != STORE_FORMAT:
                    _STORE_MISSES.inc()
                    return None
                repository = CentralRepository.from_dict(
                    json.loads(
                        (entry / "repository.json").read_text(encoding="utf-8")
                    )
                )
                reports_data = json.loads(
                    (entry / "reports.json").read_text(encoding="utf-8")
                )
                reports = {
                    name: [RoundReport.from_dict(r) for r in rows]
                    for name, rows in reports_data["reports"].items()
                }
            except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
                # Truncated JSON raises ValueError, missing keys KeyError,
                # malformed rows TypeError, and a format/monotonicity
                # violation in the payload a MonitorError (ReproError) —
                # all of them mean "this entry is unusable, recompute".
                _LOG.warning(
                    "unreadable store entry; treating as miss",
                    extra={"digest": digest[:12], "error": str(exc)},
                )
                _STORE_MISSES.inc()
                return None
            world = self._load_world(entry / "world.pkl", digest)
        _STORE_HITS.inc()
        _LOG.info(
            "campaign store hit",
            extra={
                "digest": digest[:12],
                "kind": kind,
                "world_restored": world is not None,
            },
        )
        return StoredCampaign(
            digest=digest,
            kind=kind,
            repository=repository,
            reports=reports,
            world=world,
        )

    def load_repository(
        self, config: ScenarioConfig, kind: str = "weekly"
    ) -> CentralRepository | None:
        """The stored measurement repository only — no reports, no world.

        The ``repro export`` path uses this: serialized DB in, CSVs out,
        without rebuilding the simulation world.
        """
        return self.load_repository_by_digest(config_digest(config, kind))

    def load_repository_by_digest(self, digest: str) -> CentralRepository | None:
        """Like :meth:`load_repository` but addressed by store digest."""
        entry = self.entry_dir(digest)
        if not (entry / "meta.json").exists():
            _STORE_MISSES.inc()
            return None
        with span("engine.store.load_repository", digest=digest[:12]):
            try:
                meta = json.loads(
                    (entry / "meta.json").read_text(encoding="utf-8")
                )
                if meta.get("store_format") != STORE_FORMAT:
                    _STORE_MISSES.inc()
                    return None
                repository = CentralRepository.from_dict(
                    json.loads(
                        (entry / "repository.json").read_text(encoding="utf-8")
                    )
                )
            except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
                _LOG.warning(
                    "unreadable store entry; treating as miss",
                    extra={"digest": digest[:12], "error": str(exc)},
                )
                _STORE_MISSES.inc()
                return None
        _STORE_HITS.inc()
        return repository

    def load_columnar_entry(self, digest: str, prefer_binary: bool = True):
        """One entry's ``(meta, ColumnarRepository)`` — the serving path.

        Prefers the binary ``columnar.bin`` (sha256-verified, lazily
        decoded per table); a corrupt or truncated binary is a warned
        fallback to ``columnar.json``, and entries written before the
        columnar layer existed are transposed from ``repository.json``
        on the fly.  Returns None on a miss or an unreadable entry.
        ``prefer_binary=False`` forces the JSON path (the perf harness
        uses this to time both decoders over the same entry).
        """
        from ..data.columnar import ColumnarRepository, load_columnar_binary
        from ..errors import DataError

        entry = self.entry_dir(digest)
        meta_path = entry / "meta.json"
        if not meta_path.exists():
            _STORE_MISSES.inc()
            return None
        with span("engine.store.load_columnar", digest=digest[:12]):
            try:
                meta = json.loads(meta_path.read_text(encoding="utf-8"))
                if meta.get("store_format") != STORE_FORMAT:
                    _STORE_MISSES.inc()
                    return None
                columnar = None
                binary_path = entry / "columnar.bin"
                if prefer_binary and binary_path.exists():
                    try:
                        columnar = load_columnar_binary(binary_path)
                        _BIN_LOADS.inc()
                    except DataError as exc:
                        _BIN_FALLBACKS.inc()
                        _LOG.warning(
                            "corrupt columnar binary; falling back to JSON",
                            extra={"digest": digest[:12], "error": str(exc)},
                        )
                columnar_path = entry / "columnar.json"
                if columnar is None and columnar_path.exists():
                    columnar = ColumnarRepository.from_payload(
                        json.loads(columnar_path.read_text(encoding="utf-8"))
                    )
                if columnar is None:
                    repository = CentralRepository.from_dict(
                        json.loads(
                            (entry / "repository.json").read_text(
                                encoding="utf-8"
                            )
                        )
                    )
                    columnar = ColumnarRepository.from_repository(repository)
            except (OSError, ValueError, KeyError, TypeError, ReproError) as exc:
                _LOG.warning(
                    "unreadable store entry; treating as miss",
                    extra={"digest": digest[:12], "error": str(exc)},
                )
                _STORE_MISSES.inc()
                return None
        _STORE_HITS.inc()
        return meta, columnar

    # -- observer reports ----------------------------------------------------

    def observers_dir(self, digest: str) -> pathlib.Path:
        return self.entry_dir(digest) / "observers"

    def save_observer_reports(self, digest: str, reports: dict) -> pathlib.Path:
        """Persist observer reports next to ``columnar.json``.

        ``reports`` maps observer name to
        :class:`~repro.observers.reports.ObserverReport`; each artifact is
        the report's canonical bytes, so the serving layer can return the
        file contents verbatim and still match a fresh recomputation
        byte-for-byte.
        """
        directory = self.observers_dir(digest)
        with span("engine.store.save_observers", digest=digest[:12]):
            directory.mkdir(parents=True, exist_ok=True)
            for name in sorted(reports):
                (directory / f"{name}.json").write_bytes(
                    reports[name].canonical_bytes()
                )
        _LOG.info(
            "observer reports stored",
            extra={"digest": digest[:12], "n_reports": len(reports)},
        )
        return directory

    def load_observer_report(self, digest: str, name: str) -> bytes | None:
        """One persisted report's exact canonical bytes, or None."""
        path = self.observers_dir(digest) / f"{name}.json"
        try:
            return path.read_bytes()
        except OSError:
            return None

    def list_observer_reports(self, digest: str) -> list[str]:
        """Names of the persisted observer reports for one entry, sorted."""
        directory = self.observers_dir(digest)
        if not directory.is_dir():
            return []
        return sorted(p.stem for p in directory.glob("*.json"))

    @staticmethod
    def _load_world(path: pathlib.Path, digest: str):
        if not path.exists():
            return None
        try:
            with path.open("rb") as handle:
                return pickle.load(handle)
        except Exception as exc:  # pickle can raise nearly anything
            _LOG.warning(
                "world pickle unreadable; will rebuild from config",
                extra={"digest": digest[:12], "error": str(exc)},
            )
            return None

    # -- save --------------------------------------------------------------

    def save(
        self,
        config: ScenarioConfig,
        repository: CentralRepository,
        reports: dict[str, list[RoundReport]],
        kind: str = "weekly",
        world: object | None = None,
    ) -> pathlib.Path:
        """Persist one campaign; returns its entry directory."""
        digest = config_digest(config, kind)
        entry = self.entry_dir(digest)
        with span("engine.store.save", digest=digest[:12], kind=kind):
            entry.mkdir(parents=True, exist_ok=True)
            (entry / "repository.json").write_text(
                json.dumps(repository.to_dict(), separators=(",", ":")),
                encoding="utf-8",
            )
            self._save_columnar(entry, repository, digest)
            (entry / "reports.json").write_text(
                json.dumps(
                    {
                        "reports": {
                            name: [r.to_dict() for r in rows]
                            for name, rows in reports.items()
                        }
                    },
                    separators=(",", ":"),
                ),
                encoding="utf-8",
            )
            if world is not None:
                self._save_world(entry / "world.pkl", world, digest)
            # meta.json written last: its presence marks the entry valid.
            (entry / "meta.json").write_text(
                json.dumps(
                    {
                        "store_format": STORE_FORMAT,
                        "database_format": SERIAL_FORMAT,
                        "digest": digest,
                        "kind": kind,
                        "seed": config.seed,
                        "repository_digest": repository.content_digest(),
                    },
                    indent=2,
                ),
                encoding="utf-8",
            )
        _STORE_WRITES.inc()
        _LOG.info(
            "campaign stored",
            extra={"digest": digest[:12], "kind": kind, "dir": str(entry)},
        )
        return entry

    @staticmethod
    def _save_columnar(
        entry: pathlib.Path, repository: CentralRepository, digest: str
    ) -> None:
        """Write both columnar artifacts (lazily imported: ``repro.data``
        itself imports the monitor this module already depends on).

        The JSON form streams column-at-a-time and the binary form
        writes raw buffer references, so neither materialises a second
        full copy of the campaign.
        """
        from ..data.columnar import (
            ColumnarRepository,
            write_columnar_binary,
            write_columnar_json,
        )

        columnar = ColumnarRepository.from_repository(repository)
        write_columnar_json(entry / "columnar.json", columnar)
        bin_digest = write_columnar_binary(entry / "columnar.bin", columnar)
        _LOG.debug(
            "columnar artifacts written",
            extra={"digest": digest[:12], "bin_digest": bin_digest[:12]},
        )

    @staticmethod
    def _save_world(path: pathlib.Path, world, digest: str) -> None:
        try:
            with path.open("wb") as handle:
                pickle.dump(world, handle, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception as exc:
            _LOG.warning(
                "world not picklable; storing measurement data only",
                extra={"digest": digest[:12], "error": str(exc)},
            )
            path.unlink(missing_ok=True)
