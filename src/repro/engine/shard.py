"""Campaign shards: the unit of work the execution engine dispatches.

The paper's data collection is embarrassingly parallel — six vantage
points each run their own monitoring tool and only merge databases at the
central repository.  A :class:`VantageShard` captures one vantage point's
share of a campaign as plain data (scenario config, vantage name, round
count, RNG stream name), so it can be executed in-process or pickled to a
worker process; :func:`execute_shard` turns a shard into a
:class:`ShardResult` whose payloads are the compact dict forms of
:class:`~repro.monitor.database.MeasurementDatabase` and
:class:`~repro.monitor.tool.RoundReport` — JSON-ready, so the same bytes
cross process boundaries and land in the on-disk campaign store.

Determinism: each vantage draws from its own named RNG stream, round
noise is derived per (site, family, round) from the master seed, and the
DNS timeline is a pure function of the catalog (each shard owns a
:class:`~repro.core.world.ZonePublisher`).  A shard therefore produces
the same database whether it runs interleaved with its siblings, alone in
this process, or in a worker that rebuilt the world from the config —
which is why serial and process backends yield bit-identical repositories.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, replace

from ..config import ScenarioConfig
from ..dataplane.clock import SimulationClock
from ..dns.resolver import Resolver
from ..errors import EngineError
from ..monitor.tool import MonitoringTool, RoundReport, VantageEnvironment
from ..monitor.vantage import VantagePoint
from ..net.addresses import AddressFamily
from ..obs import get_logger, span
from ..web.http import ContentEndpoint, HttpClient

_LOG = get_logger("engine.shard")

#: shard kinds understood by :func:`execute_shard`.
WEEKLY = "weekly"
W6D = "w6d"


@dataclass(frozen=True)
class VantageShard:
    """One vantage point's share of a campaign, as picklable plain data."""

    config: ScenarioConfig
    vantage_name: str
    #: :data:`WEEKLY` (the regular campaign) or :data:`W6D`.
    kind: str
    n_rounds: int
    #: the vantage's named RNG stream (``monitor:Penn``, ``w6d:LU``, ...).
    rng_stream: str
    max_sites_per_round: int = 0

    def __post_init__(self) -> None:
        if self.kind not in (WEEKLY, W6D):
            raise EngineError(f"unknown shard kind {self.kind!r}")
        if self.n_rounds < 1:
            raise EngineError("shards need at least one round")


@dataclass
class ShardResult:
    """What one executed shard sends back: JSON-ready payloads only."""

    vantage: dict
    database: dict
    reports: list[dict]
    wall_seconds: float

    @property
    def vantage_name(self) -> str:
        return self.vantage["name"]


#: per-process world cache: worker processes rebuild the world from the
#: shard's config once, then reuse it for every shard they are handed.
_WORLD_CACHE: dict[ScenarioConfig, object] = {}
_WORLD_CACHE_MAX = 2


def _world_for(config: ScenarioConfig):
    from ..core.world import build_world

    world = _WORLD_CACHE.get(config)
    if world is None:
        if len(_WORLD_CACHE) >= _WORLD_CACHE_MAX:
            _WORLD_CACHE.pop(next(iter(_WORLD_CACHE)))
        world = build_world(config)
        _WORLD_CACHE[config] = world
    return world


def _vantage_named(world, name: str) -> VantagePoint:
    for vantage in world.vantages:
        if vantage.name == name:
            return vantage
    raise EngineError(
        f"shard names unknown vantage {name!r}; world has "
        f"{[v.name for v in world.vantages]}"
    )


def _maybe_kill_for_test(shard: VantageShard) -> None:
    """Deterministic worker-failure hook for the degradation tests.

    ``REPRO_TEST_KILL_SHARD=<vantage>`` makes that vantage's shard raise
    inside pool workers (never in the main process, so the executor's
    serial fallback succeeds); ``<vantage>:exit`` hard-kills the worker
    process instead, exercising the BrokenProcessPool path.
    """
    spec = os.environ.get("REPRO_TEST_KILL_SHARD")
    if not spec or multiprocessing.parent_process() is None:
        return
    name, _, mode = spec.partition(":")
    if name != shard.vantage_name:
        return
    if mode == "exit":
        os._exit(13)
    raise EngineError(f"test hook killed shard {shard.vantage_name!r}")


def execute_shard(shard: VantageShard, world=None) -> ShardResult:
    """Run one shard to completion; the engine's worker entry point.

    ``world`` reuses an already-built world (the serial backend passes
    the caller's); when omitted — as in pool workers, which receive only
    the pickled shard — the world is rebuilt from ``shard.config`` and
    cached per process.
    """
    _maybe_kill_for_test(shard)
    if world is None:
        world = _world_for(shard.config)
    started = time.perf_counter()
    with span("engine.shard", vantage=shard.vantage_name, kind=shard.kind):
        if shard.kind == W6D:
            vantage, database, reports = _run_w6d_shard(world, shard)
        else:
            vantage, database, reports = _run_weekly_shard(world, shard)
    wall = time.perf_counter() - started
    _LOG.info(
        "shard complete",
        extra={
            "vantage": shard.vantage_name,
            "kind": shard.kind,
            "rounds": shard.n_rounds,
            "measured": sum(r.n_measured for r in reports),
            "wall_seconds": round(wall, 3),
        },
    )
    return ShardResult(
        vantage=vantage.to_dict(),
        database=database.to_dict(),
        reports=[r.to_dict() for r in reports],
        wall_seconds=wall,
    )


def _run_weekly_shard(world, shard: VantageShard):
    """One vantage point's weekly campaign against a private DNS timeline."""
    from ..core.world import ZonePublisher

    vantage = _vantage_named(world, shard.vantage_name)
    publisher = ZonePublisher(world=world)
    tool = MonitoringTool(
        vantage=vantage,
        env=world.environment_for(vantage, zones=publisher.store),
        config=world.config.monitor,
        rng=world.rngs.fresh(shard.rng_stream),
        max_sites_per_round=shard.max_sites_per_round,
    )
    reports: list[RoundReport] = []
    for round_idx in range(shard.n_rounds):
        with span("campaign.round", round=round_idx, vantage=vantage.name):
            publisher.advance_to(round_idx)
            reports.append(tool.run_round(round_idx))
    return vantage, tool.database, reports


def _run_w6d_shard(world, shard: VantageShard):
    """One vantage point's World IPv6 Day rounds (30-minute clock)."""
    vantage = _vantage_named(world, shard.vantage_name)
    # Every participating vantage monitors from the first event round,
    # with no external input feed (the event targets the roster only).
    active = replace(vantage, start_round=0, external_inputs=False)
    tool = MonitoringTool(
        vantage=active,
        env=_w6d_environment(world, active),
        config=world.config.monitor,
        rng=world.rngs.fresh(shard.rng_stream),
    )
    reports = [tool.run_round(round_idx) for round_idx in range(shard.n_rounds)]
    return active, tool.database, reports


def _w6d_environment(world, vantage: VantagePoint) -> VantageEnvironment:
    """A monitoring environment specialised for World IPv6 Day.

    Differences from the regular campaign: the site list is the
    participant roster, and participants who provisioned their IPv6
    presence well (``w6d_good_v6``) serve IPv6 at parity with IPv4 - the
    path-induced deficit is offset server-side (multi-homed event
    presence), without changing the BGP paths the monitor records.
    """
    participants = world.catalog.w6d_participants()
    names = [site.name for site in participants]
    base_endpoint = world.content_endpoint

    def content_lookup(
        name: str, family: AddressFamily, round_idx: int
    ) -> ContentEndpoint:
        endpoint = base_endpoint(name, family, round_idx)
        site = world.catalog.by_name(name)
        if family is AddressFamily.IPV6 and site.w6d_good_v6:
            v4_path = world.forwarding_path(
                vantage.asn, site.dest_asn(AddressFamily.IPV4),
                AddressFamily.IPV4, alternate=False,
            )
            v6_path = world.forwarding_path(
                vantage.asn, site.dest_asn(AddressFamily.IPV6),
                AddressFamily.IPV6, alternate=False,
            )
            if v4_path is not None and v6_path is not None:
                f_v4 = world.model.path_factor(v4_path)
                f_v6 = world.model.path_factor(v6_path)
                if f_v6 < f_v4:
                    endpoint = ContentEndpoint(
                        site_id=endpoint.site_id,
                        server_asn=endpoint.server_asn,
                        server_speed=endpoint.server_speed * (f_v4 / f_v6),
                        page_bytes=endpoint.page_bytes,
                    )
        return endpoint

    client = HttpClient(
        model=world.model,
        content_lookup=content_lookup,
        path_provider=world._path_provider(vantage.asn),
        owner_lookup=world.owner_of_address,
        fault_hook=world.server_fault_hook(),
        fault_hook_batch=world.server_fault_hook_batch(),
    )
    w6d_round = world.config.adoption.world_ipv6_day_round
    w6d_clock = SimulationClock.world_ipv6_day()
    return VantageEnvironment(
        resolver=Resolver(
            store=world.zone_snapshot(w6d_round),
            fault_check=world.dns_fault_check(w6d_clock),
        ),
        client=client,
        clock=w6d_clock,
        site_list=lambda round_idx: list(names),
        external_inputs=lambda round_idx: [],
        site_id_of=lambda name: world.catalog.by_name(name).site_id,
    )
