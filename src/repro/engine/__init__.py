"""The pluggable execution engine.

Campaigns are split into per-vantage :class:`VantageShard` units and run
through an :class:`Executor` — serial in-process or a process pool —
selected by :class:`~repro.config.ExecutionConfig` (``--backend`` /
``--jobs`` on the CLI, ``REPRO_BACKEND`` / ``REPRO_JOBS`` in the
environment).  Completed campaigns persist in a :class:`CampaignStore`
under ``.repro-cache/`` keyed by :func:`config_digest`.

Invariant: every backend produces bit-identical measurement repositories
for the same scenario config (see
:meth:`~repro.monitor.aggregate.CentralRepository.content_digest`).
"""

from ..config import ExecutionConfig
from .executor import Executor, ParallelExecutor, SerialExecutor, make_executor
from .shard import W6D, WEEKLY, ShardResult, VantageShard, execute_shard
from .store import (
    DEFAULT_CACHE_ROOT,
    CampaignStore,
    StoredCampaign,
    StoreEntry,
    config_digest,
)

__all__ = [
    "ExecutionConfig",
    "Executor",
    "SerialExecutor",
    "ParallelExecutor",
    "make_executor",
    "VantageShard",
    "ShardResult",
    "execute_shard",
    "WEEKLY",
    "W6D",
    "CampaignStore",
    "StoredCampaign",
    "StoreEntry",
    "config_digest",
    "DEFAULT_CACHE_ROOT",
]
