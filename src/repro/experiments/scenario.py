"""Shared experiment scaffolding.

Building a world and running a 40-round campaign is the expensive part of
every experiment, and the paper derives all of its tables from the *same*
measurement repository.  This module does the same: one cached campaign
per configuration, with the per-vantage screening/classification layers
precomputed into :class:`AnalysisContext` objects.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.classify import (
    ASGroup,
    SiteCategory,
    SiteClassification,
    classify_sites,
    group_by_destination,
    groups_in_category,
    sites_in_category,
)
from ..analysis.confidence import SiteScreening, kept_sites, screen_all
from ..analysis.hypotheses import ASEvaluation, evaluate_groups
from ..config import ExecutionConfig, FaultConfig, ScenarioConfig, default_config
from ..core.campaign import CampaignResult, run_campaign, run_world_ipv6_day
from ..core.world import build_world
from ..engine import DEFAULT_CACHE_ROOT, W6D, WEEKLY, CampaignStore
from ..monitor.database import MeasurementDatabase
from ..monitor.vantage import VantagePoint
from ..obs import get_logger, metrics, span

_LOG = get_logger("experiments.scenario")
#: campaign-cache effectiveness (future perf PRs read these).
_CACHE_HITS = metrics.counter("scenario.cache_hits")
_CACHE_MISSES = metrics.counter("scenario.cache_misses")
_CACHED_CAMPAIGNS = metrics.gauge("scenario.cached_campaigns")

#: Scale of the default experiment world: big enough for table shapes,
#: small enough to build in a couple of minutes.
EXPERIMENT_SCALE = 0.5
#: Adoption oversampling: the paper's ~1% of 1M sites yields ~10k
#: dual-stack sites; a 10k-site catalog at 1% would yield ~100, too few
#: for per-AS statistics.  Boosting the adoption base preserves every
#: per-site mechanism while restoring a usable dual-stack population.
ADOPTION_OVERSAMPLING = 5.0


def experiment_config(
    seed: int = 20111206, faults: "str | FaultConfig | None" = None
) -> ScenarioConfig:
    """The configuration the experiments and benchmarks run at.

    ``faults`` selects a fault preset by name (or passes a
    :class:`~repro.config.FaultConfig` directly); ``None`` falls back to
    the ``REPRO_FAULTS`` environment variable, which defaults to no
    fault injection — so existing callers and caches are unaffected.
    """
    from dataclasses import replace

    from ..faults import resolve_faults

    config = default_config(seed).scaled(EXPERIMENT_SCALE)
    return replace(
        config,
        adoption=replace(
            config.adoption,
            base_adoption=config.adoption.base_adoption * ADOPTION_OVERSAMPLING,
        ),
        faults=resolve_faults(faults),
    )


@dataclass
class AnalysisContext:
    """Per-vantage precomputed analysis layers."""

    vantage: VantagePoint
    db: MeasurementDatabase
    screenings: dict[int, SiteScreening]
    kept: list[int]
    classifications: dict[int, SiteClassification]
    groups: dict[int, ASGroup]
    sp_evaluations: dict[int, ASEvaluation]
    dp_evaluations: dict[int, ASEvaluation]

    @property
    def dual_stack_sites(self) -> list[int]:
        return self.db.dual_stack_sites()

    def sites_in(self, category: SiteCategory) -> list[int]:
        return sites_in_category(self.classifications, category)

    def groups_in(self, category: SiteCategory) -> list[ASGroup]:
        return groups_in_category(self.groups, category)


@dataclass
class ExperimentData:
    """One campaign plus its per-vantage analysis contexts."""

    config: ScenarioConfig
    campaign: CampaignResult
    contexts: dict[str, AnalysisContext]

    @property
    def world(self):
        return self.campaign.world

    @property
    def repository(self):
        return self.campaign.repository

    def context(self, vantage_name: str) -> AnalysisContext:
        return self.contexts[vantage_name]

    @property
    def analysis_vantage_names(self) -> list[str]:
        return list(self.contexts)


def build_contexts(
    config: ScenarioConfig, campaign: CampaignResult
) -> dict[str, AnalysisContext]:
    """Run screening, classification, and AS evaluation per vantage."""
    contexts: dict[str, AnalysisContext] = {}
    with span("analysis.contexts", vantages=len(campaign.repository.vantage_names)):
        for vantage, db in campaign.repository.analysis_items():
            with span("analysis.vantage", vantage=vantage.name):
                dual_stack = db.dual_stack_sites()
                screenings = screen_all(
                    db, dual_stack, config.monitor, config.analysis
                )
                kept = kept_sites(screenings)
                classifications = classify_sites(db, kept)
                groups = group_by_destination(classifications)
                sp_groups = groups_in_category(groups, SiteCategory.SP)
                dp_groups = groups_in_category(groups, SiteCategory.DP)
                contexts[vantage.name] = AnalysisContext(
                    vantage=vantage,
                    db=db,
                    screenings=screenings,
                    kept=kept,
                    classifications=classifications,
                    groups=groups,
                    sp_evaluations=evaluate_groups(db, sp_groups, config.analysis),
                    dp_evaluations=evaluate_groups(db, dp_groups, config.analysis),
                )
            _LOG.debug(
                "analysis context built",
                extra={
                    "vantage": vantage.name,
                    "dual_stack": len(dual_stack),
                    "kept": len(kept),
                },
            )
    return contexts


#: memory tier (first tier) of the campaign cache.
_DATA_CACHE: dict[ScenarioConfig, ExperimentData] = {}
_W6D_CACHE: dict[ScenarioConfig, ExperimentData] = {}

#: disk tier (second tier): a CampaignStore, None when disabled, and a
#: "not decided yet" flag so the env var is read lazily on first use.
_STORE: CampaignStore | None = None
_STORE_CONFIGURED = False


def _store() -> CampaignStore | None:
    global _STORE, _STORE_CONFIGURED
    if not _STORE_CONFIGURED:
        import os

        root = os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_ROOT)
        _STORE = CampaignStore(root) if root else None
        _STORE_CONFIGURED = True
    return _STORE


def get_store() -> CampaignStore | None:
    """The configured disk-tier store, or None when caching is disabled.

    Public accessor for the CLI paths (``repro export`` / ``serve`` /
    ``cache``) so they honour :func:`configure_cache` and the
    ``REPRO_CACHE_DIR`` environment variable the same way campaigns do.
    """
    return _store()


def configure_cache(root=None) -> None:
    """Point the disk tier at ``root``; ``None`` disables it entirely.

    Unconfigured, the disk tier lives at ``$REPRO_CACHE_DIR`` (default
    ``.repro-cache`` in the working directory).
    """
    global _STORE, _STORE_CONFIGURED
    _STORE = CampaignStore(root) if root is not None else None
    _STORE_CONFIGURED = True


def _bump_cached_gauge() -> None:
    _CACHED_CAMPAIGNS.set(len(_DATA_CACHE) + len(_W6D_CACHE))


def get_experiment_data(
    config: ScenarioConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> ExperimentData:
    """The cached campaign + analysis for ``config`` (built on first use).

    Two cache tiers: process memory, then the on-disk campaign store.  A
    disk hit skips the world build and the campaign — the world is
    unpickled from the store (or rebuilt from config if the pickle is
    missing) and the measurement repository is loaded as data.
    ``execution`` picks the backend for a fresh campaign run; it is
    deliberately *not* part of the cache key, because every backend
    produces bit-identical repositories.
    """
    if config is None:
        config = experiment_config()
    cached = _DATA_CACHE.get(config)
    if cached is not None:
        _CACHE_HITS.inc()
        return cached
    store = _store()
    if store is not None:
        stored = store.load(config, kind=WEEKLY)
        if stored is not None:
            _CACHE_HITS.inc()
            world = stored.world if stored.world is not None else build_world(config)
            campaign = CampaignResult(
                world=world,
                repository=stored.repository,
                reports=stored.reports,
            )
            data = ExperimentData(
                config=config,
                campaign=campaign,
                contexts=build_contexts(config, campaign),
            )
            _DATA_CACHE[config] = data
            _bump_cached_gauge()
            return data
    _CACHE_MISSES.inc()
    world = build_world(config)
    campaign = run_campaign(world, execution=execution)
    data = ExperimentData(
        config=config,
        campaign=campaign,
        contexts=build_contexts(config, campaign),
    )
    _DATA_CACHE[config] = data
    if store is not None:
        store.save(
            config,
            campaign.repository,
            campaign.reports,
            kind=WEEKLY,
            world=world,
        )
    _bump_cached_gauge()
    return data


def get_w6d_data(
    config: ScenarioConfig | None = None,
    execution: ExecutionConfig | None = None,
) -> ExperimentData:
    """The cached World IPv6 Day campaign for ``config``.

    Reuses the regular campaign's world (the event happens *within* the
    same Internet) and runs the 30-minute-round participant campaign.
    W6D store entries carry no world pickle of their own — on a disk hit
    the world comes from the weekly campaign's cache entry.
    """
    if config is None:
        config = experiment_config()
    cached = _W6D_CACHE.get(config)
    if cached is not None:
        _CACHE_HITS.inc()
        return cached
    store = _store()
    if store is not None:
        stored = store.load(config, kind=W6D)
        if stored is not None:
            _CACHE_HITS.inc()
            base = get_experiment_data(config, execution=execution)
            campaign = CampaignResult(
                world=base.world,
                repository=stored.repository,
                reports=stored.reports,
            )
            data = ExperimentData(
                config=config,
                campaign=campaign,
                contexts=build_contexts(config, campaign),
            )
            _W6D_CACHE[config] = data
            _bump_cached_gauge()
            return data
    _CACHE_MISSES.inc()
    base = get_experiment_data(config, execution=execution)
    campaign = run_world_ipv6_day(base.world, execution=execution)
    data = ExperimentData(
        config=config,
        campaign=campaign,
        contexts=build_contexts(config, campaign),
    )
    _W6D_CACHE[config] = data
    if store is not None:
        store.save(config, campaign.repository, campaign.reports, kind=W6D)
    _bump_cached_gauge()
    return data


def clear_caches() -> None:
    """Drop memory-tier cached campaigns (tests use this to control
    memory); the disk tier is left intact."""
    _DATA_CACHE.clear()
    _W6D_CACHE.clear()
    _CACHED_CAMPAIGNS.set(0)
