"""Table 8 — H1: IPv6 vs IPv4 for SP destination ASes.

When the paths coincide, the overwhelming majority of destination ASes
see comparable IPv6 and IPv4 performance; the residue is explained by
zero-modes (server-side IPv6 impairments) or is too small to judge.
Cross-checks across vantage points all agree — the core evidence for H1.
"""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from ..analysis.crosscheck import cross_check_common_sites
from ..analysis.hypotheses import ASVerdict, verdict_fractions
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "            Penn   Comcast  LU     UPCB",
    "IPv6~=IPv4  81.3%  80.7%    70.2%  79.8%",
    "Zero mode   9.4%   6%       10.8%  7.3%",
    "Small #     9.3%   13.3%    19.0%  12.9%",
    "# ASes      75     233      248    124",
    "x-check(+)  47     129      164    82",
    "x-check(-)  0      0        0      0",
]


def run(data: ExperimentData | None = None) -> Table:
    """Build the SP destination-AS table (H1)."""
    if data is None:
        data = get_experiment_data()
    fractions = {}
    counts = {}
    for name in VANTAGE_ORDER:
        evaluations = data.context(name).sp_evaluations
        fractions[name] = verdict_fractions(evaluations.values())
        counts[name] = len(evaluations)
    check = cross_check_common_sites(
        {
            name: (
                data.context(name).db,
                {
                    g.asn: g
                    for g in data.context(name).groups_in(SiteCategory.SP)
                },
            )
            for name in VANTAGE_ORDER
        },
        data.config.analysis,
    )
    table = Table(
        title="Table 8 - IPv6 vs IPv4 for SP destination ASes (H1)",
        columns=("row", *VANTAGE_ORDER),
        paper_reference=PAPER_REFERENCE,
    )
    table.add_row(
        "IPv6~=IPv4",
        *(pct(fractions[n][ASVerdict.COMPARABLE]) for n in VANTAGE_ORDER),
    )
    table.add_row(
        "Zero mode",
        *(pct(fractions[n][ASVerdict.ZERO_MODE]) for n in VANTAGE_ORDER),
    )
    table.add_row(
        "Small # of sites",
        *(pct(fractions[n][ASVerdict.SMALL_N]) for n in VANTAGE_ORDER),
    )
    table.add_row(
        "Unexplained worse",
        *(pct(fractions[n][ASVerdict.WORSE]) for n in VANTAGE_ORDER),
    )
    table.add_row("# ASes", *(counts[n] for n in VANTAGE_ORDER))
    table.add_row("x-check (+)", check.positive, "", "", "")
    table.add_row("x-check (-)", check.negative, "", "", "")
    table.notes.append(
        "x-checks are cross-vantage (one number, shown in the first "
        "column); H1 expects the comparable row to dominate and no "
        "negative cross-checks"
    )
    return table


def h1_holds(data: ExperimentData | None = None, threshold: float = 0.6) -> bool:
    """Programmatic H1 verdict: comparable+zero-mode majority everywhere."""
    if data is None:
        data = get_experiment_data()
    for name in VANTAGE_ORDER:
        evaluations = data.context(name).sp_evaluations
        if not evaluations:
            return False
        fractions = verdict_fractions(evaluations.values())
        explained = (
            fractions[ASVerdict.COMPARABLE]
            + fractions[ASVerdict.ZERO_MODE]
            + fractions[ASVerdict.SMALL_N]
        )
        if explained < threshold:
            return False
    return True
