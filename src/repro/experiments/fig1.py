"""Figure 1 — IPv6 reachability of the top list over time.

The paper plots the fraction of Alexa's top-1M that is IPv6 accessible,
rising from ~0.2% to just above 1%, with two jumps: the IANA free-pool
depletion announcement and World IPv6 Day.  We reproduce the series from
the monitor's per-round DNS counters (measured view) alongside the
catalog's ground truth.
"""

from __future__ import annotations

from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data

PAPER_REFERENCE = [
    "series rises from ~0.2% (Dec 2010) to ~1.1% (Aug 2011)",
    "jump 1 at IANA depletion (Feb 3, 2011), jump 2 at World IPv6 Day (Jun 8, 2011)",
]


def reachability_series(data: ExperimentData) -> list[tuple[int, float, float]]:
    """(round, measured fraction, ground-truth fraction) per round.

    Measured = AAAA share among DNS queries issued by the earliest-start
    vantage (Penn monitors from round 0); ground truth = catalog adoption
    over the round's ranked list.
    """
    world = data.world
    db = data.repository.database("Penn")
    out: list[tuple[int, float, float]] = []
    for round_idx in range(data.config.campaign.n_rounds):
        measured = db.v6_reachability(round_idx)
        truth = world.catalog.accessible_fraction(round_idx)
        out.append((round_idx, measured, truth))
    return out


def run(data: ExperimentData | None = None) -> Table:
    """Build the Figure 1 series table."""
    if data is None:
        data = get_experiment_data()
    series = reachability_series(data)
    adoption = data.config.adoption
    table = Table(
        title="Fig 1 - IPv6 reachability of the top list over time",
        columns=("round", "measured", "ground truth", "event"),
        paper_reference=PAPER_REFERENCE,
    )
    for round_idx, measured, truth in series:
        event = ""
        if round_idx == adoption.iana_depletion_round:
            event = "IANA depletion"
        elif round_idx == adoption.world_ipv6_day_round:
            event = "World IPv6 Day"
        table.add_row(round_idx, pct(measured, 2), pct(truth, 2), event)
    table.notes.append(
        "measured = AAAA fraction among Penn's DNS queries (includes its "
        "external site feed); ground truth = catalog adoption over the "
        "ranked list"
    )
    return table
