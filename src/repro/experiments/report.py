"""Paper-style table rendering.

Every experiment returns a :class:`Table`; its ``render()`` output lines
up the measured values next to the paper's published values (when
provided) so a reader can eyeball the shape comparison the reproduction
targets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence


def fmt(value) -> str:
    """Human formatting: floats get 1 decimal, fractions get a percent."""
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.1f}"
    return str(value)


def pct(fraction: float | None, digits: int = 1) -> str:
    """Format a 0-1 fraction as a percentage string."""
    if fraction is None:
        return "-"
    return f"{100.0 * fraction:.{digits}f}%"


@dataclass
class Table:
    """A rendered experiment result."""

    title: str
    columns: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    #: the corresponding numbers from the paper, as display-ready rows.
    paper_reference: list[str] = field(default_factory=list)

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(cells)

    def cell(self, row_idx: int, column: str):
        """Fetch one cell by row index and column name."""
        return self.rows[row_idx][list(self.columns).index(column)]

    def column_values(self, column: str) -> list[object]:
        idx = list(self.columns).index(column)
        return [row[idx] for row in self.rows]

    def render(self) -> str:
        """Fixed-width text rendering, paper reference appended."""
        header = [str(c) for c in self.columns]
        body = [[fmt(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in body)) if body else len(header[i])
            for i in range(len(header))
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.paper_reference:
            lines.append("")
            lines.append("-- paper reference --")
            lines.extend(self.paper_reference)
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
