"""Transition matrix — native / tunneled / translated IPv6 access.

Beyond the paper: with the NAT64/DNS64 axis enabled, every v4-only site
becomes reachable over IPv6 through a translator, so the campaign's v6
population splits three ways (:class:`~repro.analysis.classify.TransitionKind`).
This table reports, per vantage point, the adoption of each mechanism
and the native-vs-NAT64 speed gap — the translated analogue of the
paper's tunnel findings (tunnels make v6 slower; so does translation).

On a default (DNS64-off) campaign the transitions table is empty and
the table renders a single explanatory note.
"""

from __future__ import annotations

from ..analysis.classify import (
    TransitionKind,
    classify_transitions,
    sites_in_transition,
    transition_split,
)
from ..analysis.metrics import site_mean_speed
from ..net.addresses import AddressFamily
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data

REFERENCE = [
    "no 2011 paper counterpart; NAT64/DNS64 axis after RFC 6146/6147.",
    "expected shape (arXiv:2402.14632): translated destinations trail",
    "native IPv6 - the v4 leg behind the translator adds hidden hops",
    "and a translation penalty, like the tunnel detours of Table 7.",
]


def _kind_speeds(context, site_ids) -> list[float]:
    speeds = []
    for site_id in site_ids:
        speed = site_mean_speed(context.db, site_id, AddressFamily.IPV6)
        if speed is not None:
            speeds.append(speed)
    return speeds


def run(data: ExperimentData | None = None) -> Table:
    """Build the per-vantage transition-matrix table."""
    if data is None:
        data = get_experiment_data()
    table = Table(
        title="Transition matrix - IPv6 access by mechanism (beyond the paper)",
        columns=(
            "vantage", "native", "tunneled", "translated",
            "translated share", "v6 speed native", "v6 speed NAT64",
            "native/NAT64",
        ),
        paper_reference=REFERENCE,
    )
    any_rows = False
    for name in data.analysis_vantage_names:
        context = data.context(name)
        classes = classify_transitions(context.db)
        if not classes:
            continue
        any_rows = True
        split = transition_split(classes)
        total = len(classes)
        native_speeds = _kind_speeds(
            context, sites_in_transition(classes, TransitionKind.NATIVE)
        )
        translated_speeds = _kind_speeds(
            context, sites_in_transition(classes, TransitionKind.TRANSLATED)
        )
        native = (
            sum(native_speeds) / len(native_speeds) if native_speeds else None
        )
        translated = (
            sum(translated_speeds) / len(translated_speeds)
            if translated_speeds
            else None
        )
        table.add_row(
            name,
            split[TransitionKind.NATIVE],
            split[TransitionKind.TUNNELED],
            split[TransitionKind.TRANSLATED],
            pct(split[TransitionKind.TRANSLATED] / total if total else None),
            native,
            translated,
            native / translated if native is not None and translated else None,
        )
    if not any_rows:
        table.notes.append(
            "no transitions recorded - run with --transition to enable "
            "the NAT64/DNS64 axis"
        )
    else:
        table.notes.append(
            "a site's kind follows its most recent round: mid-campaign "
            "AAAA adopters count as native, not NAT64"
        )
    return table
