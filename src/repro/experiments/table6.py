"""Table 6 — IPv6 vs IPv4 performance for DL sites.

DL sites are served from different ASes per family — typically a v4-only
CDN fronting IPv4 while IPv6 falls through to the origin.  The paper
finds IPv4 as good or better 90-96% of the time, with consistently
higher average speeds: a measure of what native IPv6 CDN offerings would
buy.
"""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from ..analysis.metrics import site_mean_speed, site_relative_difference
from ..net.addresses import AddressFamily
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "            Penn  Comcast  LU    UPCB",
    "# sites     784   450      352   485",
    "IPv4>=IPv6  96%   91%      94%   90%",
    "IPv4 perf   35.6  49.3     50.9  49.6",
    "IPv6 perf   28.2  43.6     43.4  47.3",
]


def dl_statistics(data: ExperimentData, vantage_name: str) -> dict[str, object]:
    """DL-site statistics at one vantage point."""
    context = data.context(vantage_name)
    db = context.db
    dl_sites = context.sites_in(SiteCategory.DL)
    v4_means: list[float] = []
    v6_means: list[float] = []
    v4_wins = 0
    judged = 0
    for sid in dl_sites:
        v4 = site_mean_speed(db, sid, AddressFamily.IPV4)
        v6 = site_mean_speed(db, sid, AddressFamily.IPV6)
        diff = site_relative_difference(db, sid)
        if v4 is None or v6 is None or diff is None:
            continue
        judged += 1
        v4_means.append(v4)
        v6_means.append(v6)
        if diff <= 0:
            v4_wins += 1
    return {
        "n_sites": judged,
        "v4_ge_v6": (v4_wins / judged) if judged else None,
        "v4_perf": (sum(v4_means) / judged) if judged else None,
        "v6_perf": (sum(v6_means) / judged) if judged else None,
    }


def run(data: ExperimentData | None = None) -> Table:
    """Build the DL-performance table."""
    if data is None:
        data = get_experiment_data()
    stats = {name: dl_statistics(data, name) for name in VANTAGE_ORDER}
    table = Table(
        title="Table 6 - IPv6 vs IPv4 performance (kbytes/sec) for DL sites",
        columns=("row", *VANTAGE_ORDER),
        paper_reference=PAPER_REFERENCE,
    )
    table.add_row("# sites", *(stats[n]["n_sites"] for n in VANTAGE_ORDER))
    table.add_row(
        "IPv4 >= IPv6", *(pct(stats[n]["v4_ge_v6"], 0) for n in VANTAGE_ORDER)
    )
    table.add_row("IPv4 perf.", *(stats[n]["v4_perf"] for n in VANTAGE_ORDER))
    table.add_row("IPv6 perf.", *(stats[n]["v6_perf"] for n in VANTAGE_ORDER))
    table.notes.append(
        "expected shape: IPv4 wins for the vast majority of DL sites and "
        "its average speed is consistently higher"
    )
    return table
