"""Table 9 — SP destination ASes: performance by hop count.

The finer-grained H1 check: within each AS-path-length bucket, SP sites
see near-identical IPv6 and IPv4 speeds (the paths coincide, so — unlike
Table 7 — the hop count means the same thing in both families).
"""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from ..analysis.hopcount import BUCKETS, performance_by_hopcount
from ..net.addresses import AddressFamily
from .report import Table
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "Comcast IPv4: 64.2/137 41.6/632 36.0/304 36.8/10 -/0",
    "Comcast IPv6: 59.9/137 42.1/632 35.4/304 34.0/10 -/0",
    "pattern: per-bucket v6 ~ v4 (within a few percent), same # sites",
]


def run(data: ExperimentData | None = None) -> Table:
    """Build the SP hop-count table."""
    if data is None:
        data = get_experiment_data()
    columns = ["vantage", "family"]
    for bucket in BUCKETS:
        columns.extend((f"{bucket} hops", f"# sites ({bucket})"))
    table = Table(
        title="Table 9 - SP destination ASes: performance (kbytes/sec) by hop count",
        columns=tuple(columns),
        paper_reference=PAPER_REFERENCE,
    )
    for name in VANTAGE_ORDER:
        context = data.context(name)
        buckets = performance_by_hopcount(
            context.db, context.sites_in(SiteCategory.SP)
        )
        for family in (AddressFamily.IPV4, AddressFamily.IPV6):
            cells: list[object] = [name, str(family)]
            for bucket in BUCKETS:
                cell = buckets[family][bucket]
                cells.append(cell.mean_speed)
                cells.append(cell.n_sites)
            table.add_row(*cells)
    table.notes.append(
        "SP sites share one path per family pair, so per-bucket site "
        "counts match between IPv4 and IPv6 rows"
    )
    return table
