"""Section 5.5 — the negative finding.

Do sites where IPv6 beats IPv4 share a common trait (category, AS,
region)?  The paper looked and found none; this experiment repeats the
scan and reports whether any dominant trait emerged.
"""

from __future__ import annotations

from ..analysis.misc import TraitReport, trait_analysis
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "\"no such grouping emerged, so that no dominant trait could be "
    "associated with better IPv6 performers\"",
]


def reports_by_vantage(data: ExperimentData) -> dict[str, TraitReport]:
    """Run the trait scan at every vantage point."""
    out: dict[str, TraitReport] = {}
    for name in VANTAGE_ORDER:
        context = data.context(name)
        catalog = data.world.catalog
        region_of = lambda sid: data.world.topology.ases[
            catalog.site(sid).origin_asn
        ].region
        out[name] = trait_analysis(
            context.db,
            context.classifications,
            extra_traits={"region": region_of},
        )
    return out


def run(data: ExperimentData | None = None) -> Table:
    """Build the Section 5.5 summary table."""
    if data is None:
        data = get_experiment_data()
    reports = reports_by_vantage(data)
    table = Table(
        title="Section 5.5 - common traits among better-IPv6 sites",
        columns=("vantage", "# v6-better", "dominant trait?", "top trait share"),
        paper_reference=PAPER_REFERENCE,
    )
    for name in VANTAGE_ORDER:
        report = reports[name]
        top = report.shares[0] if report.shares else None
        table.add_row(
            name,
            report.n_winners,
            "none" if report.no_dominant_trait else str(report.dominant_traits[0]),
            pct(top.winner_share) if top else "-",
        )
    table.notes.append(
        "'dominant' requires lift >= 1.5 over baseline and >= 50% support; "
        "the reproduction expects 'none' everywhere"
    )
    return table
