"""Run every experiment and print the paper-style report.

Usage::

    python -m repro.experiments.run_all [--scale FACTOR] [--seed SEED]
        [--backend serial|process] [--jobs N]
        [--cache-dir DIR] [--no-cache] [--faults PRESET] [--transition]

Builds one world, runs the weekly campaign plus the World IPv6 Day
campaign, and prints all figures/tables with the paper's reference
numbers attached.  Completed campaigns persist in the on-disk campaign
store (``.repro-cache/`` by default), so a rerun with the same config
skips the world build and the campaign entirely.
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import replace

from ..config import EXECUTION_BACKENDS, ExecutionConfig, default_config
from ..faults import FAULT_PRESETS, resolve_faults
from ..obs import enable as enable_tracing
from ..obs import span, write_report
from . import scenario
from . import (  # noqa: F401 - imported for table registry below
    fig1,
    fig3a,
    fig3b,
    section55,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
    table7,
    table8,
    table9,
    table11,
    table13,
    transition,
    worldipv6day,
)

#: (label, module-level runner, needs_w6d) in paper order.
EXPERIMENTS = (
    ("Fig 1", fig1.run, False),
    ("Fig 3a", fig3a.run, False),
    ("Fig 3b", fig3b.run, False),
    ("Table 1", table1.run, False),
    ("Table 2", table2.run, False),
    ("Table 3", table3.run, False),
    ("Table 4", table4.run, False),
    ("Table 5", table5.run, False),
    ("Table 6", table6.run, False),
    ("Table 7", table7.run, False),
    ("Table 8", table8.run, False),
    ("Table 9", table9.run, False),
    ("Table 10", worldipv6day.run_table10, True),
    ("Table 11", table11.run, False),
    ("Table 12", worldipv6day.run_table12, True),
    ("Table 13", table13.run, False),
    ("Section 5.5", section55.run, False),
    ("Transition matrix", transition.run, False),
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=scenario.EXPERIMENT_SCALE,
        help="world scale relative to the default config",
    )
    parser.add_argument("--seed", type=int, default=20111206)
    parser.add_argument(
        "--profile",
        metavar="PATH",
        default=None,
        help="write a JSON observability report (spans + metrics) to PATH",
    )
    parser.add_argument(
        "--backend",
        choices=EXECUTION_BACKENDS,
        default=None,
        help="execution backend (default: $REPRO_BACKEND or serial)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for --backend process (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="campaign store root (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk campaign store",
    )
    parser.add_argument(
        "--faults",
        choices=sorted(FAULT_PRESETS),
        default=None,
        help="fault-injection preset (default: $REPRO_FAULTS or none)",
    )
    parser.add_argument(
        "--transition",
        action="store_true",
        help="enable the NAT64/DNS64 transition axis (populates the "
        "transition-matrix table; default: off)",
    )
    args = parser.parse_args(argv)
    enable_tracing()
    if args.no_cache:
        scenario.configure_cache(None)
    elif args.cache_dir is not None:
        scenario.configure_cache(args.cache_dir)
    if args.backend is None and args.jobs is None:
        execution = None  # defer to REPRO_BACKEND / REPRO_JOBS
    else:
        env = ExecutionConfig.from_env()
        execution = ExecutionConfig(
            backend=args.backend if args.backend is not None else env.backend,
            jobs=args.jobs if args.jobs is not None else env.jobs,
        )

    # Same recipe as scenario.experiment_config: scale the world and
    # oversample adoption so per-AS statistics have enough sites.
    config = default_config(args.seed).scaled(args.scale)
    config = replace(
        config,
        adoption=replace(
            config.adoption,
            base_adoption=(
                config.adoption.base_adoption * scenario.ADOPTION_OVERSAMPLING
            ),
        ),
        faults=resolve_faults(args.faults),
    )
    if args.transition:
        config = replace(
            config, dns64=replace(config.dns64, enabled=True)
        )
    t0 = time.time()
    data = scenario.get_experiment_data(config, execution=execution)
    print(f"# campaign built and run in {time.time() - t0:.1f}s", file=sys.stderr)
    t0 = time.time()
    w6d = scenario.get_w6d_data(config, execution=execution)
    print(f"# World IPv6 Day campaign in {time.time() - t0:.1f}s", file=sys.stderr)

    for label, runner, needs_w6d in EXPERIMENTS:
        with span("experiment.artifact", label=label) as timing:
            table = runner(w6d if needs_w6d else data)
        print(f"# {label} in {timing.duration:.2f}s", file=sys.stderr)
        print(table.render())
        print()
    print("# H1 holds:", table8.h1_holds(data))
    print("# H2 holds:", table11.h2_holds(data))
    if args.profile:
        path = write_report(
            args.profile,
            bench="run_all",
            meta={"seed": args.seed, "scale": args.scale},
        )
        print(f"# profile written to {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
