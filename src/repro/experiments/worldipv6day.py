"""Tables 10 and 12 — the World IPv6 Day experiment.

During the event the monitors ran every 30 minutes against the
participant roster.  Table 10 (SP ASes) comes out even cleaner than
Table 8 — participants made sure their end systems were fully IPv6
qualified, so no zero-mode row exists.  Table 12 (DP ASes) improves
dramatically over Table 11 (~50% comparable): participants provisioned
their IPv6 presence well enough to offset routing detours, though DP
still trails SP — consistent with H2.
"""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from ..analysis.crosscheck import cross_check_common_sites
from ..analysis.hypotheses import ASVerdict, verdict_fractions
from .report import Table, pct
from .scenario import ExperimentData, get_w6d_data

#: Comcast's W6D data "was not available" (paper, Section 5.3).
W6D_VANTAGES = ("Penn", "LU", "UPCB")

PAPER_REFERENCE_T10 = [
    "            Penn   LU     UPCB",
    "IPv6~=IPv4  92.3%  85.7%  72.2%",
    "Other       7.7%   14.3%  27.8%",
    "# ASes      13     42     36",
    "x-check(+)  8      17     13",
]

PAPER_REFERENCE_T12 = [
    "            Penn   LU     UPCB",
    "IPv6~=IPv4  53.5%  48.9%  51.0%",
    "# ASes      114    92     102",
]


def run_table10(data: ExperimentData | None = None) -> Table:
    """Build Table 10 — W6D, SP ASes."""
    if data is None:
        data = get_w6d_data()
    fractions = {}
    counts = {}
    for name in W6D_VANTAGES:
        evaluations = data.context(name).sp_evaluations
        fractions[name] = verdict_fractions(evaluations.values())
        counts[name] = len(evaluations)
    check = cross_check_common_sites(
        {
            name: (
                data.context(name).db,
                {
                    g.asn: g
                    for g in data.context(name).groups_in(SiteCategory.SP)
                },
            )
            for name in W6D_VANTAGES
        },
        data.config.analysis,
    )
    table = Table(
        title="Table 10 - World IPv6 Day: IPv6 vs IPv4 for SP ASes",
        columns=("row", *W6D_VANTAGES),
        paper_reference=PAPER_REFERENCE_T10,
    )
    table.add_row(
        "IPv6~=IPv4",
        *(pct(fractions[n][ASVerdict.COMPARABLE]) for n in W6D_VANTAGES),
    )
    table.add_row(
        "Other",
        *(
            pct(1.0 - fractions[n][ASVerdict.COMPARABLE])
            for n in W6D_VANTAGES
        ),
    )
    table.add_row("# ASes", *(counts[n] for n in W6D_VANTAGES))
    table.add_row("x-check (+)", check.positive, "", "")
    table.add_row("x-check (-)", check.negative, "", "")
    table.notes.append(
        "no zero-mode row: participants made their end systems fully "
        "IPv6 qualified (impaired servers absent by construction)"
    )
    return table


def run_table12(data: ExperimentData | None = None) -> Table:
    """Build Table 12 — W6D, DP ASes."""
    if data is None:
        data = get_w6d_data()
    table = Table(
        title="Table 12 - World IPv6 Day: IPv6 vs IPv4 for DP ASes",
        columns=("row", *W6D_VANTAGES),
        paper_reference=PAPER_REFERENCE_T12,
    )
    fractions = {}
    counts = {}
    for name in W6D_VANTAGES:
        evaluations = data.context(name).dp_evaluations
        fractions[name] = verdict_fractions(evaluations.values())
        counts[name] = len(evaluations)
    table.add_row(
        "IPv6~=IPv4",
        *(pct(fractions[n][ASVerdict.COMPARABLE]) for n in W6D_VANTAGES),
    )
    table.add_row("# ASes", *(counts[n] for n in W6D_VANTAGES))
    table.notes.append(
        "expected shape: around half of DP participants comparable - far "
        "above Table 11, still below Table 10's SP results"
    )
    return table
