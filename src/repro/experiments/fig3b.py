"""Figure 3b — does the top-list sample bias performance comparisons?

The paper supplements Alexa's top-1M with ~5M sites harvested from
Penn's DNS cache and compares "how often is the IPv6 download faster"
between the two samples: the bars are nearly equal (~30%), evidence that
top-list conclusions generalise.
"""

from __future__ import annotations

from ..analysis.metrics import fraction_v6_faster
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data

PAPER_REFERENCE = [
    "Top 1M ~ 30%, 5M sample ~ 31% (bars nearly equal; y-axis '% IPv6 "
    "better' tops out near 40)",
]


def v6_faster_by_sample(data: ExperimentData) -> tuple[float | None, float | None]:
    """(top-list fraction, extended-sample fraction) of v6-faster sites.

    Both computed at Penn (the vantage with the external feed) over kept
    sites only, like the paper's performance comparisons.
    """
    context = data.context("Penn")
    external = set(data.world.external_site_ids())
    kept = context.kept
    top_list = [sid for sid in kept if sid not in external]
    everything = list(kept)
    db = context.db
    return (
        fraction_v6_faster(db, top_list),
        fraction_v6_faster(db, everything),
    )


def run(data: ExperimentData | None = None) -> Table:
    """Build the Figure 3b comparison table."""
    if data is None:
        data = get_experiment_data()
    top, extended = v6_faster_by_sample(data)
    table = Table(
        title="Fig 3b - how often is the IPv6 download faster (Penn)",
        columns=("sample", "% IPv6 faster"),
        paper_reference=PAPER_REFERENCE,
    )
    table.add_row("Top list", pct(top))
    table.add_row("Extended (+DNS cache)", pct(extended))
    table.notes.append(
        "the reproduction target is the two bars being close, not their "
        "absolute height"
    )
    return table
