"""Table 4 — site classification (DL / SP / DP) per vantage point."""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from .report import Table
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "          Penn  Comcast  LU    UPCB",
    "# DL      784   450      352   485",
    "# SP      424   1113     2291  2597",
    "# DP      6786  1962     1263  1336",
]


def classification_counts(data: ExperimentData) -> dict[str, dict[str, int]]:
    """``{vantage: {category: count}}`` over kept sites."""
    out: dict[str, dict[str, int]] = {}
    for name in VANTAGE_ORDER:
        context = data.context(name)
        out[name] = {
            category.value: len(context.sites_in(category))
            for category in SiteCategory
        }
    return out


def run(data: ExperimentData | None = None) -> Table:
    """Build the site-classification table."""
    if data is None:
        data = get_experiment_data()
    counts = classification_counts(data)
    table = Table(
        title="Table 4 - sites classification",
        columns=("category", *VANTAGE_ORDER),
        paper_reference=PAPER_REFERENCE,
    )
    for category in (SiteCategory.DL, SiteCategory.SP, SiteCategory.DP):
        table.add_row(
            f"# {category.value} sites",
            *(counts[name][category.value] for name in VANTAGE_ORDER),
        )
    table.notes.append(
        "expected shape: every vantage has a nontrivial DL population "
        "(CDN users) and a vantage-dependent SP/DP split"
    )
    return table
