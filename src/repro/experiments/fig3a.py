"""Figure 3a — IPv6 reachability by site rank.

"A site rank does influence its likelihood of IPv6 accessibility": the
paper buckets the top list cumulatively (Top 10, Top 100, ..., Top 1M)
and shows reachability falling from ~10% at the very top to ~1% overall.
"""

from __future__ import annotations

from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data

PAPER_REFERENCE = [
    "Top 10 ~10-12%, Top 100 ~6%, Top 1k ~4%, Top 10k ~2.5%, "
    "Top 100k ~1.5%, Top 1M ~1.1% (reading Fig 3a's bars)",
]


def rank_buckets(list_size: int) -> list[int]:
    """Cumulative bucket sizes: 10, 100, ... up to the list size."""
    buckets: list[int] = []
    size = 10
    while size < list_size:
        buckets.append(size)
        size *= 10
    buckets.append(list_size)
    return buckets


def reachability_by_rank(
    data: ExperimentData, round_idx: int | None = None
) -> list[tuple[int, float]]:
    """(bucket size, fraction of the top-`bucket` that is v6 accessible)."""
    world = data.world
    if round_idx is None:
        round_idx = data.config.campaign.n_rounds - 1
    ranked = world.catalog.ranking.list_at_round(round_idx)
    out: list[tuple[int, float]] = []
    for bucket in rank_buckets(len(ranked)):
        head = ranked[:bucket]
        accessible = sum(
            1 for sid in head
            if world.catalog.site(sid).v6_accessible_at(round_idx)
        )
        out.append((bucket, accessible / len(head)))
    return out


def run(data: ExperimentData | None = None) -> Table:
    """Build the Figure 3a bucket table."""
    if data is None:
        data = get_experiment_data()
    table = Table(
        title="Fig 3a - IPv6 reachability by rank (end of campaign)",
        columns=("bucket", "reachability"),
        paper_reference=PAPER_REFERENCE,
    )
    for bucket, fraction in reachability_by_rank(data):
        table.add_row(f"Top {bucket}", pct(fraction, 2))
    table.notes.append(
        "buckets are cumulative; the monotone decrease with bucket size "
        "is the paper's rank effect"
    )
    return table
