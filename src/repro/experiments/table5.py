"""Table 5 — classification of removed sites (bias audit)."""

from __future__ import annotations

from ..analysis.removed import audit_removed_sites
from .report import Table
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "              Penn  Comcast  LU   UPCB",
    "SP good perf  64    185      462  1242",
    "SP bad perf   8     64       42   163",
    "DP good perf  404   346      206  463",
    "DP bad perf   880   93       106  216",
    "DL good perf  111   54       65   103",
    "DL bad perf   117   50       24   92",
]


def run(data: ExperimentData | None = None) -> Table:
    """Build the removed-site audit table."""
    if data is None:
        data = get_experiment_data()
    audits = {
        name: audit_removed_sites(
            name,
            data.context(name).db,
            data.context(name).screenings,
            data.config.analysis.comparable_threshold,
        )
        for name in VANTAGE_ORDER
    }
    table = Table(
        title="Table 5 - classification of removed sites",
        columns=("row", *VANTAGE_ORDER),
        paper_reference=PAPER_REFERENCE,
    )
    rows = (
        ("SP good perf.", lambda a: a.sp_good),
        ("SP bad perf.", lambda a: a.sp_bad),
        ("DP good perf.", lambda a: a.dp_good),
        ("DP bad perf.", lambda a: a.dp_bad),
        ("DL good perf.", lambda a: a.dl_good),
        ("DL bad perf.", lambda a: a.dl_bad),
    )
    for label, getter in rows:
        table.add_row(label, *(getter(audits[name]) for name in VANTAGE_ORDER))
    table.notes.append(
        "'good' = removed site's IPv6 mean within 10% of IPv4 or better; "
        "insufficient-sample removals are not auditable and are excluded"
    )
    return table
