"""Table 3 — causes of confidence-target failures."""

from __future__ import annotations

from ..analysis.sanitize import categorise_failures
from .report import Table
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "         insuff  ^    v    /    \\   (of steps, path changes)",
    "Penn     2807    180  103  732  569  (64 of 283)",
    "Comcast  251     83   52   530  127  (64 of 135)",
    "LU       258     49   63   419  374  (43 of 112)",
    "UPCB     1146    233  214  1033 799  (169 of 447)",
]


def run(data: ExperimentData | None = None) -> Table:
    """Build the failure-cause table."""
    if data is None:
        data = get_experiment_data()
    table = Table(
        title="Table 3 - causes of confidence target failures",
        columns=(
            "vantage",
            "insufficient",
            "step up",
            "step down",
            "trend up",
            "trend down",
            "unstable",
            "steps w/ path change",
        ),
        paper_reference=PAPER_REFERENCE,
    )
    for name in VANTAGE_ORDER:
        context = data.context(name)
        causes = categorise_failures(name, context.screenings)
        table.add_row(
            name,
            causes.insufficient,
            causes.step_up,
            causes.step_down,
            causes.trend_up,
            causes.trend_down,
            causes.unstable,
            f"{causes.steps_from_path_changes} of {causes.total_steps}",
        )
    table.notes.append(
        "'unstable' = CI failures without an identified step/trend; the "
        "paper folds these into its transition columns"
    )
    return table
