"""Table 2 — monitoring profiles per vantage point.

Sites measured dual-stack, sites kept after confidence screening,
distinct destination ASes per family, and ASes crossed per family —
from each AS_PATH vantage point and across all of them.
"""

from __future__ import annotations

from ..net.addresses import AddressFamily
from .report import Table
from .scenario import ExperimentData, get_experiment_data

PAPER_REFERENCE = [
    "              Penn  Comcast  LU    UPCB  All",
    "Sites (total) 12385 4568     5069  7843  NA",
    "Sites kept    7994  3525     3906  4418  NA",
    "Dest AS v4    1047  724      801   766   1364",
    "Dest AS v6    727   592      642   609   1010",
    "Crossed v4    1332  922      1019  988   1785",
    "Crossed v6    849   742      764   746   1208",
]

#: column order follows the paper.
VANTAGE_ORDER = ("Penn", "Comcast", "LU", "UPCB")


def profile_rows(data: ExperimentData) -> dict[str, list[object]]:
    """The six data rows of Table 2, keyed by row label."""
    rows: dict[str, list[object]] = {
        "Sites (total)": [],
        "Sites kept": [],
        "Dest ASes (IPv4)": [],
        "Dest ASes (IPv6)": [],
        "ASes crossed (IPv4)": [],
        "ASes crossed (IPv6)": [],
    }
    union: dict[str, set[int]] = {
        "Dest ASes (IPv4)": set(),
        "Dest ASes (IPv6)": set(),
        "ASes crossed (IPv4)": set(),
        "ASes crossed (IPv6)": set(),
    }
    for name in VANTAGE_ORDER:
        context = data.context(name)
        db = context.db
        rows["Sites (total)"].append(len(context.dual_stack_sites))
        rows["Sites kept"].append(len(context.kept))
        for family, dest_label, crossed_label in (
            (AddressFamily.IPV4, "Dest ASes (IPv4)", "ASes crossed (IPv4)"),
            (AddressFamily.IPV6, "Dest ASes (IPv6)", "ASes crossed (IPv6)"),
        ):
            dest = db.destination_ases(family)
            crossed = db.ases_crossed(family)
            rows[dest_label].append(len(dest))
            rows[crossed_label].append(len(crossed))
            union[dest_label] |= dest
            union[crossed_label] |= crossed
    rows["Sites (total)"].append("NA")
    rows["Sites kept"].append("NA")
    for label, members in union.items():
        rows[label].append(len(members))
    return rows


def run(data: ExperimentData | None = None) -> Table:
    """Build the monitoring-profile table."""
    if data is None:
        data = get_experiment_data()
    table = Table(
        title="Table 2 - monitoring profiles per vantage point",
        columns=("numbers of", *VANTAGE_ORDER, "All"),
        paper_reference=PAPER_REFERENCE,
    )
    for label, cells in profile_rows(data).items():
        table.add_row(label, *cells)
    table.notes.append(
        "expected shape: Penn (earliest start + external feed) monitors "
        "the most sites; v6 dest/crossed AS counts sit below v4"
    )
    return table
