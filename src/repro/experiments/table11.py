"""Table 11 — H2: IPv6 vs IPv4 for DP destination ASes.

When routing differs, comparable performance collapses: only 3-11% of DP
ASes see IPv6 on par with IPv4 (plus a small zero-mode share).  Set
against Table 8's ~80%, the one differing factor — routing — stands
indicted; that is hypothesis H2.
"""

from __future__ import annotations

from ..analysis.hypotheses import ASVerdict, verdict_fractions
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "            Penn  Comcast  LU    UPCB",
    "IPv6~=IPv4  3%    11%      10%   8%",
    "Zero mode   12%   5%       3%    6%",
    "# ASes      587   266      341   422",
]


def run(data: ExperimentData | None = None) -> Table:
    """Build the DP destination-AS table (H2)."""
    if data is None:
        data = get_experiment_data()
    fractions = {}
    counts = {}
    for name in VANTAGE_ORDER:
        evaluations = data.context(name).dp_evaluations
        fractions[name] = verdict_fractions(evaluations.values())
        counts[name] = len(evaluations)
    table = Table(
        title="Table 11 - IPv6 vs IPv4 for DP destination ASes (H2)",
        columns=("row", *VANTAGE_ORDER),
        paper_reference=PAPER_REFERENCE,
    )
    table.add_row(
        "IPv6~=IPv4",
        *(pct(fractions[n][ASVerdict.COMPARABLE]) for n in VANTAGE_ORDER),
    )
    table.add_row(
        "Zero mode",
        *(pct(fractions[n][ASVerdict.ZERO_MODE]) for n in VANTAGE_ORDER),
    )
    table.add_row("# ASes", *(counts[n] for n in VANTAGE_ORDER))
    table.notes.append(
        "no x-check rows: path deviations vary per vantage point, so "
        "cross-vantage comparisons are not meaningful (as in the paper)"
    )
    return table


def h2_holds(data: ExperimentData | None = None, gap: float = 0.3) -> bool:
    """Programmatic H2 verdict: DP comparability far below SP's.

    True when, at every vantage, the comparable share among DP ASes is at
    least ``gap`` lower than among SP ASes.
    """
    if data is None:
        data = get_experiment_data()
    for name in VANTAGE_ORDER:
        sp = data.context(name).sp_evaluations
        dp = data.context(name).dp_evaluations
        if not sp or not dp:
            return False
        sp_comp = verdict_fractions(sp.values())[ASVerdict.COMPARABLE]
        dp_comp = verdict_fractions(dp.values())[ASVerdict.COMPARABLE]
        if sp_comp - dp_comp < gap:
            return False
    return True
