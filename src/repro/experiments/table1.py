"""Table 1 — the monitoring vantage points."""

from __future__ import annotations

from .report import Table
from .scenario import ExperimentData, get_experiment_data

PAPER_REFERENCE = [
    "Comcast (Denver, CO)      2/4/11   Y  N  Comml.",
    "Go6-Slovenia (Slovenia)   5/19/11  N  N  Comml.",
    "Loughborough U. (GB)      4/29/11  Y  N  Acad.",
    "Penn (Philadelphia, PA)   7/22/09  Y  N  Acad.",
    "Tsinghua U. (China)       3/22/11  N  N  Acad.",
    "UPC Broadband (NL)        2/28/11  Y  Y  Comml.",
]


def run(data: ExperimentData | None = None) -> Table:
    """Build the vantage-point inventory table."""
    if data is None:
        data = get_experiment_data()
    table = Table(
        title="Table 1 - monitoring vantage points",
        columns=("vantage point", "start", "AS PATH", "W-L", "type"),
        paper_reference=PAPER_REFERENCE,
    )
    for vantage in sorted(data.world.vantages, key=lambda v: v.name):
        table.add_row(*vantage.table1_row())
    table.notes.append(
        "start dates become start rounds; AS assignments are synthetic "
        "but preserve each vantage's v6-connectivity character"
    )
    return table
