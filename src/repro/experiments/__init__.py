"""One module per paper artifact (figures 1/3a/3b, tables 1-13).

All experiments share a cached campaign (see :mod:`scenario`) so that a
full ``repro-experiments`` run — or the benchmark suite — builds the
world and runs the monitoring once, then derives every table from the
same repository, exactly like the paper's analysis did.
"""

from .scenario import (
    AnalysisContext,
    ExperimentData,
    experiment_config,
    get_experiment_data,
    get_w6d_data,
)
from .report import Table

__all__ = [
    "AnalysisContext",
    "ExperimentData",
    "experiment_config",
    "get_experiment_data",
    "get_w6d_data",
    "Table",
]
