"""Table 7 — DL+DP performance by AS-path hop count.

Sites whose IPv6 and IPv4 paths differ, bucketed by each family's own
path length.  The paper's signature artifact: 1-2 hop IPv6 entries
under-perform their IPv4 counterparts because tunnels make IPv6 paths
*appear* shorter than the forwarding detour they hide; at higher hop
counts (tunnels unlikely) IPv6 converges to IPv4 — supporting H1.
"""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from ..analysis.hopcount import BUCKETS, performance_by_hopcount
from ..net.addresses import AddressFamily
from .report import Table
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "Penn IPv4: 25.4/5 39.5/4327 31.1/2318 28.5/567 22.7/179 (speed/#sites per bucket)",
    "Penn IPv6: -/0 104.0/6 33.9/742 28.7/3296 22.1/3352",
    "pattern: IPv4 speed decreases with hop count; low-hop IPv6 entries",
    "are sparse/anomalous (tunnels); at 3+ hops IPv6 ~ IPv4",
]


def hopcount_table(
    data: ExperimentData, vantage_name: str
) -> dict[AddressFamily, dict[str, object]]:
    """Bucketed DL+DP performance for one vantage point."""
    context = data.context(vantage_name)
    sites = context.sites_in(SiteCategory.DL) + context.sites_in(SiteCategory.DP)
    return performance_by_hopcount(context.db, sites)


def run(data: ExperimentData | None = None) -> Table:
    """Build the DL+DP hop-count table."""
    if data is None:
        data = get_experiment_data()
    columns = ["vantage", "family"]
    for bucket in BUCKETS:
        columns.extend((f"{bucket} hops", f"# sites ({bucket})"))
    table = Table(
        title="Table 7 - DL+DP sites: performance (kbytes/sec) by hop count",
        columns=tuple(columns),
        paper_reference=PAPER_REFERENCE,
    )
    for name in VANTAGE_ORDER:
        buckets = hopcount_table(data, name)
        for family in (AddressFamily.IPV4, AddressFamily.IPV6):
            cells: list[object] = [name, str(family)]
            for bucket in BUCKETS:
                cell = buckets[family][bucket]
                cells.append(cell.mean_speed)
                cells.append(cell.n_sites)
            table.add_row(*cells)
    table.notes.append(
        "hop counts are apparent AS-path lengths; tunneled IPv6 paths "
        "under-count their true forwarding length"
    )
    return table
