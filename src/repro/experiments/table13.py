"""Table 13 — "good AS" coverage of DP paths.

Most DP paths consist mostly — but rarely entirely — of ASes that also
appear on good IPv6 paths (paths to comparable SP destinations).  The
paper reads this as: the data plane of those ASes is exonerated, and no
"bad apple" AS could be identified either, leaving routing (H2) as the
explanation for poor DP performance.
"""

from __future__ import annotations

from ..analysis.classify import SiteCategory
from ..analysis.goodas import (
    GOODNESS_BUCKETS,
    collect_good_ases,
    dp_path_goodness,
    goodness_buckets,
)
from .report import Table, pct
from .scenario import ExperimentData, get_experiment_data
from .table2 import VANTAGE_ORDER

PAPER_REFERENCE = [
    "% good ASes  Penn   Comcast  LU     UPCB",
    "100%         3.2%   11.1%    6.4%   17.2%",
    "[75,100)     20.8%  8.3%     0.9%   22.4%",
    "[50,75)      58.8%  45.8%    68.8%  52.6%",
    "[25,50)      15.8%  27.8%    19.3%  7.8%",
    "[0,25)       1.4%   6.9%     4.6%   0%",
]


def coverage_by_vantage(data: ExperimentData) -> dict[str, dict[str, float]]:
    """Per vantage, the share of DP paths in each goodness bucket."""
    good = collect_good_ases(
        {
            name: (data.context(name).db, data.context(name).sp_evaluations)
            for name in VANTAGE_ORDER
        }
    )
    out: dict[str, dict[str, float]] = {}
    for name in VANTAGE_ORDER:
        context = data.context(name)
        fractions = dp_path_goodness(
            context.db, context.groups_in(SiteCategory.DP), good
        )
        out[name] = goodness_buckets(fractions.values())
    return out


def run(data: ExperimentData | None = None) -> Table:
    """Build the good-AS coverage table."""
    if data is None:
        data = get_experiment_data()
    coverage = coverage_by_vantage(data)
    table = Table(
        title="Table 13 - 'good' AS coverage in DP paths",
        columns=("% good ASes in path", *VANTAGE_ORDER),
        paper_reference=PAPER_REFERENCE,
    )
    for bucket in GOODNESS_BUCKETS:
        table.add_row(bucket, *(pct(coverage[n][bucket]) for n in VANTAGE_ORDER))
    table.notes.append(
        "expected shape: mass concentrated in the middle buckets - most "
        "paths are mostly good, few are entirely good"
    )
    return table
