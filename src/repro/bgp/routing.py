"""Valley-free route computation with Gao-Rexford preferences.

BGP policy routing is modelled the standard way:

* **Export rules** — an AS exports routes learned from customers to
  everyone; routes learned from peers or providers only to customers.
  Consequently every usable AS path is *valley-free*: zero or more
  customer-to-provider ("up") hops, at most one peering hop, then zero or
  more provider-to-customer ("down") hops.
* **Selection rules** — local preference first (customer routes over peer
  routes over provider routes), then shortest AS path, then lowest
  next-hop ASN as a deterministic tie-break.

Routes are computed per destination AS with three sweeps (customer BFS up
from the destination, one peer step, provider propagation down), which is
``O(E)`` per destination.  :class:`PathOracle` wraps this with a cache of
the (source, destination) paths the monitoring pipeline actually asks for.
"""

from __future__ import annotations

import heapq
import math
import time
from dataclasses import dataclass
from enum import IntEnum

#: sentinel length for "no route yet" comparisons.
_INF_INT = 10**9

from ..errors import RoutingError
from ..net.addresses import AddressFamily
from ..obs import metrics, span
from ..topology.dualstack import DualStackTopology

#: routing metrics: computations, cache hits, and accumulated compute
#: seconds (computations fire on demand inside monitoring rounds, so a
#: seconds counter — not a wrapping span — is what yields routes/sec).
_COMPUTES = metrics.counter("bgp.route_computations")
_CACHE_HITS = metrics.counter("bgp.route_cache_hits")
_COMPUTE_SECONDS = metrics.counter("bgp.compute_seconds")


class RouteClass(IntEnum):
    """Gao-Rexford local preference classes (lower = preferred)."""

    CUSTOMER = 0
    PEER = 1
    PROVIDER = 2


@dataclass(frozen=True)
class Route:
    """A selected route: the full AS path (source first, destination last)."""

    path: tuple[int, ...]
    route_class: RouteClass

    @property
    def source(self) -> int:
        return self.path[0]

    @property
    def destination(self) -> int:
        return self.path[-1]

    @property
    def hop_count(self) -> int:
        """AS-path hop count (adjacent destination = 1 hop)."""
        return len(self.path) - 1

    def __post_init__(self) -> None:
        if len(self.path) < 1:
            raise RoutingError("empty AS path")
        if len(set(self.path)) != len(self.path):
            raise RoutingError(f"AS path has a loop: {self.path}")

    @classmethod
    def trusted(cls, path: tuple[int, ...], route_class: RouteClass) -> "Route":
        """Construct without the O(n) loop/emptiness validation.

        For paths the oracle derives from already loop-free routing state
        (Dijkstra trees, explicitly membership-checked concatenations);
        the public constructor keeps validating for everything else.
        """
        route = cls.__new__(cls)
        object.__setattr__(route, "path", path)
        object.__setattr__(route, "route_class", route_class)
        return route


@dataclass
class _DestinationRoutes:
    """All per-AS routing state toward one destination.

    ``qcost`` entries are accumulated ``-log(quality)`` along the path
    (source excluded) — the tie-break that models operators preferring
    the best-provisioned of several equal-length routes.
    """

    dest: int
    #: customer-route length, quality cost, and parent per AS.
    dist_c: dict[int, int]
    qcost_c: dict[int, float]
    parent_c: dict[int, int]
    #: best route per AS: (class, length, quality cost, next-hop).
    best: dict[int, tuple[RouteClass, int, float, int]]

    def customer_path(self, asn: int) -> tuple[int, ...]:
        """Reconstruct the pure-customer path from ``asn`` down to dest."""
        path = [asn]
        cursor = asn
        while cursor != self.dest:
            cursor = self.parent_c[cursor]
            path.append(cursor)
        return tuple(path)

    def best_path(self, asn: int) -> tuple[int, ...] | None:
        """Reconstruct ``asn``'s selected path, or None if unreachable."""
        if asn == self.dest:
            return (asn,)
        entry = self.best.get(asn)
        if entry is None:
            return None
        route_class, _, _, nexthop = entry
        if route_class is RouteClass.CUSTOMER:
            return self.customer_path(asn)
        if route_class is RouteClass.PEER:
            return (asn,) + self.customer_path(nexthop)
        tail = self.best_path(nexthop)
        if tail is None:  # pragma: no cover - inconsistent state
            raise RoutingError(f"broken provider route at AS{asn}")
        return (asn,) + tail


def compute_routes_to(
    topo: DualStackTopology,
    dest: int,
    family: AddressFamily,
) -> _DestinationRoutes:
    """Compute every AS's selected route toward ``dest`` in ``family``.

    Selection is lexicographic: route class (customer < peer < provider),
    then AS-path length, then accumulated quality cost (operators prefer
    the best-provisioned of equal-length candidates), then lowest
    next-hop ASN.  The quality tie-break matters to H2: the IPv4 best
    route is best *among several*; when IPv6 lacks that option, the
    fallback is systematically no better - "less efficient paths".
    """
    if not topo.reaches(dest, family):
        raise RoutingError(f"AS{dest} is not on the {family} Internet")

    def weight(asn: int) -> float:
        return -math.log(topo.base.ases[asn].quality(family))

    # Sweep 1 - customer routes: lexicographic Dijkstra up provider links.
    dist_c: dict[int, int] = {dest: 0}
    qcost_c: dict[int, float] = {dest: 0.0}
    parent_c: dict[int, int] = {}
    heap: list[tuple[int, float, int]] = [(0, 0.0, dest)]
    settled: set[int] = set()
    while heap:
        dist, qcost, asn = heapq.heappop(heap)
        if asn in settled:
            continue
        settled.add(asn)
        step = weight(asn)
        for provider in sorted(topo.providers_of(asn, family)):
            cand = (dist + 1, qcost + step)
            current = (
                dist_c.get(provider, _INF_INT),
                qcost_c.get(provider, math.inf),
            )
            if cand < current:
                dist_c[provider], qcost_c[provider] = cand
                parent_c[provider] = asn
                heapq.heappush(heap, (cand[0], cand[1], provider))

    best: dict[int, tuple[RouteClass, int, float, int]] = {}
    for asn, dist in dist_c.items():
        if asn == dest:
            continue
        best[asn] = (RouteClass.CUSTOMER, dist, qcost_c[asn], parent_c[asn])

    # Sweep 2 - peer routes: one peering hop into the customer cone.
    for asn, dist in list(dist_c.items()):
        for peer in sorted(topo.peers_of(asn, family)):
            if peer == dest:
                continue
            candidate = (
                RouteClass.PEER, dist + 1, qcost_c[asn] + weight(asn), asn
            )
            current = best.get(peer)
            if current is None or candidate < current:
                best[peer] = candidate

    # Sweep 3 - provider routes: propagate best routes down customer links.
    # Lexicographic Dijkstra seeded with every AS holding any route.
    pheap: list[tuple[int, float, int]] = []
    for asn, (_, length, qcost, _) in best.items():
        heapq.heappush(pheap, (length, qcost, asn))
    if dest in topo.base.ases:
        heapq.heappush(pheap, (0, 0.0, dest))
    settled = set()
    while pheap:
        length, qcost, asn = heapq.heappop(pheap)
        if asn in settled:
            continue
        settled.add(asn)
        if asn == dest:
            exported_len, exported_q = 0, 0.0
        else:
            entry = best.get(asn)
            if entry is None:  # pragma: no cover - seeded nodes only
                continue
            exported_len, exported_q = entry[1], entry[2]
        step = weight(asn)
        for customer in sorted(topo.customers_of(asn, family)):
            if customer == dest:
                continue
            candidate = (
                RouteClass.PROVIDER, exported_len + 1, exported_q + step, asn
            )
            current = best.get(customer)
            if current is None or candidate < current:
                best[customer] = candidate
                heapq.heappush(pheap, (candidate[1], candidate[2], customer))

    return _DestinationRoutes(
        dest=dest, dist_c=dist_c, qcost_c=qcost_c, parent_c=parent_c, best=best
    )


class PathOracle:
    """Cached (source, destination, family) AS-path lookups.

    Route state is computed per destination and immediately distilled into
    the source paths requested, so memory stays proportional to the number
    of distinct queries, not ``destinations x ASes``.
    """

    def __init__(self, topo: DualStackTopology, sources: list[int]) -> None:
        for src in sources:
            if src not in topo.base.ases:
                raise RoutingError(f"unknown source AS{src}")
        self.topo = topo
        self.sources = list(sources)
        self._cache: dict[
            tuple[int, AddressFamily], dict[int, tuple[Route | None, Route | None]]
        ] = {}

    def _routes_for(
        self, dest: int, family: AddressFamily
    ) -> dict[int, tuple[Route | None, Route | None]]:
        key = (dest, family)
        cached = self._cache.get(key)
        if cached is not None:
            _CACHE_HITS.inc()
            return cached
        t0 = time.perf_counter()
        with span("bgp.compute", dest=dest, family=family.name):
            state = compute_routes_to(self.topo, dest, family)
            per_source: dict[int, tuple[Route | None, Route | None]] = {}
            for src in self.sources:
                per_source[src] = self._extract(state, src, family)
        _COMPUTES.inc()
        _COMPUTE_SECONDS.inc(time.perf_counter() - t0)
        self._cache[key] = per_source
        return per_source

    def _extract(
        self, state: _DestinationRoutes, src: int, family: AddressFamily
    ) -> tuple[Route | None, Route | None]:
        """Best and second-best (distinct first hop) routes at ``src``."""
        if src == state.dest:
            route = Route.trusted((src,), RouteClass.CUSTOMER)
            return route, None

        def weight(asn: int) -> float:
            return -math.log(self.topo.base.ases[asn].quality(family))

        candidates: list[
            tuple[RouteClass, int, float, int, tuple[int, ...]]
        ] = []
        for customer in sorted(self.topo.customers_of(src, family)):
            dist = state.dist_c.get(customer)
            if dist is not None:
                path = (src,) + state.customer_path(customer)
                qcost = state.qcost_c[customer] + weight(customer)
                candidates.append(
                    (RouteClass.CUSTOMER, dist + 1, qcost, customer, path)
                )
        for peer in sorted(self.topo.peers_of(src, family)):
            dist = state.dist_c.get(peer)
            if dist is not None:
                path = (src,) + state.customer_path(peer)
                qcost = state.qcost_c[peer] + weight(peer)
                candidates.append((RouteClass.PEER, dist + 1, qcost, peer, path))
        for provider in sorted(self.topo.providers_of(src, family)):
            if provider == state.dest:
                candidates.append(
                    (RouteClass.PROVIDER, 1, weight(provider), provider,
                     (src, provider))
                )
                continue
            entry = state.best.get(provider)
            if entry is not None:
                tail = state.best_path(provider)
                if tail is not None and src not in tail:
                    candidates.append(
                        (
                            RouteClass.PROVIDER,
                            entry[1] + 1,
                            entry[2] + weight(provider),
                            provider,
                            (src,) + tail,
                        )
                    )
        if not candidates:
            return None, None
        candidates.sort(key=lambda c: (c[0], c[1], c[2], c[3]))
        primary = Route.trusted(candidates[0][4], candidates[0][0])
        alternate = None
        for cand in candidates[1:]:
            if cand[3] != candidates[0][3]:
                alternate = Route.trusted(cand[4], cand[0])
                break
        return primary, alternate

    # -- public API ----------------------------------------------------------

    def route(self, src: int, dest: int, family: AddressFamily) -> Route | None:
        """The selected route from ``src`` to ``dest``, or None."""
        if src not in self.sources:
            raise RoutingError(f"AS{src} is not a registered source")
        if not self.topo.reaches(dest, family):
            return None
        return self._routes_for(dest, family)[src][0]

    def alternate_route(
        self, src: int, dest: int, family: AddressFamily
    ) -> Route | None:
        """The best route with a different first hop, if one exists."""
        if src not in self.sources:
            raise RoutingError(f"AS{src} is not a registered source")
        if not self.topo.reaches(dest, family):
            return None
        return self._routes_for(dest, family)[src][1]

    def detour_route(
        self, src: int, dest: int, family: AddressFamily
    ) -> Route | None:
        """A route entering ``dest`` through a different last hop.

        Models a destination-side reroute (the destination shifting a
        prefix announcement to another provider): the path runs to one of
        the destination's other providers, then down the final
        customer link.  Returns None when the destination is single-homed
        in ``family`` or no loop-free detour exists.
        """
        primary = self.route(src, dest, family)
        if primary is None or len(primary.path) < 2:
            return None
        last_hop = primary.path[-2]
        for provider in sorted(self.topo.providers_of(dest, family)):
            if provider == last_hop:
                continue
            head = self.route(src, provider, family)
            if head is not None and dest not in head.path:
                return Route.trusted(head.path + (dest,), head.route_class)
        return None

    def as_path(
        self, src: int, dest: int, family: AddressFamily
    ) -> tuple[int, ...] | None:
        """The selected AS path (source first), or None if unreachable."""
        route = self.route(src, dest, family)
        return route.path if route is not None else None
