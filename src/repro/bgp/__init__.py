"""Control plane: valley-free (Gao-Rexford) routing and routing tables."""

from .routing import PathOracle, Route, RouteClass, compute_routes_to
from .ribdump import (
    RouteChange,
    RouteChangeKind,
    changed_origins,
    diff_tables,
    dump_table,
    parse_dump,
)
from .table import RouteEntry, RoutingTable, build_routing_table

__all__ = [
    "PathOracle",
    "Route",
    "RouteClass",
    "compute_routes_to",
    "RouteEntry",
    "RoutingTable",
    "build_routing_table",
    "RouteChange",
    "RouteChangeKind",
    "changed_origins",
    "diff_tables",
    "dump_table",
    "parse_dump",
]
