"""Per-vantage-point BGP routing tables.

The paper correlated measurements with AS paths by reading "the (core)
routing table of a router close to the machine running the monitoring
software".  :class:`RoutingTable` is that artifact: a longest-prefix-match
table mapping announced prefixes to AS paths, one per (vantage, family).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import RoutingError
from ..net.addresses import Address, AddressFamily, Prefix
from ..topology.dualstack import DualStackTopology
from .routing import PathOracle


@dataclass(frozen=True)
class RouteEntry:
    """One RIB entry: a prefix, its origin AS, and the selected AS path."""

    prefix: Prefix
    origin_asn: int
    as_path: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.as_path:
            raise RoutingError("RouteEntry needs a non-empty AS path")
        if self.as_path[-1] != self.origin_asn:
            raise RoutingError(
                f"AS path must end at origin AS{self.origin_asn}, "
                f"got {self.as_path}"
            )


@dataclass
class RoutingTable:
    """A longest-prefix-match RIB for one (vantage AS, family)."""

    vantage_asn: int
    family: AddressFamily
    entries: dict[Prefix, RouteEntry] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._by_length: dict[int, dict[int, RouteEntry]] = {}
        for entry in self.entries.values():
            self._index(entry)

    def _index(self, entry: RouteEntry) -> None:
        self._by_length.setdefault(entry.prefix.length, {})[
            entry.prefix.network
        ] = entry

    def insert(self, entry: RouteEntry) -> None:
        if entry.prefix.family is not self.family:
            raise RoutingError(
                f"cannot insert {entry.prefix.family} prefix into "
                f"{self.family} table"
            )
        self.entries[entry.prefix] = entry
        self._index(entry)

    def lookup(self, address: Address) -> RouteEntry | None:
        """Longest-prefix-match lookup; None when no route covers it."""
        if address.family is not self.family:
            raise RoutingError(
                f"cannot look up {address.family} address in {self.family} table"
            )
        value = int(address)
        bits = self.family.bits
        for length in sorted(self._by_length, reverse=True):
            network = value & (((1 << bits) - 1) ^ ((1 << (bits - length)) - 1))
            entry = self._by_length[length].get(network)
            if entry is not None:
                return entry
        return None

    def as_path_to(self, address: Address) -> tuple[int, ...] | None:
        entry = self.lookup(address)
        return entry.as_path if entry is not None else None

    def __len__(self) -> int:
        return len(self.entries)


def build_routing_table(
    topo: DualStackTopology,
    oracle: PathOracle,
    vantage_asn: int,
    family: AddressFamily,
    destinations: list[int] | None = None,
) -> RoutingTable:
    """Build the vantage router's RIB for ``family``.

    Installs one entry per destination AS holding a prefix in ``family``
    and reachable from the vantage point.  ``destinations`` limits the
    build to a subset of origin ASes (the monitor only needs routes to
    ASes that host monitored sites).
    """
    table = RoutingTable(vantage_asn=vantage_asn, family=family)
    if destinations is None:
        destinations = topo.asn_list
    for dest in destinations:
        if not topo.allocator.has_prefix(dest, family):
            continue
        path = oracle.as_path(vantage_asn, dest, family)
        if path is None:
            continue
        prefix = topo.allocator.prefix_of(dest, family)
        table.insert(RouteEntry(prefix=prefix, origin_asn=dest, as_path=path))
    return table
