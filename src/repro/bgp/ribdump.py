"""RIB dumps: serialisable routing-table snapshots and their diffs.

The paper "obtain[ed] BGP routing tables after each monitoring round"
from a router near each vantage point, then compared snapshots to find
path changes.  This module provides that artifact: a text serialisation
of a :class:`~repro.bgp.table.RoutingTable` (one line per prefix, in the
spirit of ``show ip bgp`` output), a parser for it, and a differ that
classifies what changed between two rounds' snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

from ..errors import RoutingError
from ..net.addresses import AddressFamily, Prefix
from .table import RouteEntry, RoutingTable

#: header written at the top of every dump.
DUMP_HEADER = "# repro-ribdump v1"


def dump_table(table: RoutingTable) -> str:
    """Serialise a routing table, one ``prefix origin path...`` per line.

    Lines are sorted by prefix so dumps of equal tables compare equal as
    text — handy for storing snapshots and diffing them with standard
    tools.
    """
    lines = [
        DUMP_HEADER,
        f"# vantage_asn={table.vantage_asn} family={table.family.value} "
        f"entries={len(table)}",
    ]
    for prefix in sorted(table.entries):
        entry = table.entries[prefix]
        path = " ".join(str(asn) for asn in entry.as_path)
        lines.append(f"{prefix} {entry.origin_asn} {path}")
    return "\n".join(lines) + "\n"


def parse_dump(text: str) -> RoutingTable:
    """Parse a dump produced by :func:`dump_table`."""
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines or lines[0] != DUMP_HEADER:
        raise RoutingError("not a repro-ribdump (missing header)")
    meta: dict[str, str] = {}
    for token in lines[1].lstrip("# ").split():
        key, _, value = token.partition("=")
        meta[key] = value
    try:
        vantage_asn = int(meta["vantage_asn"])
        family = (
            AddressFamily.IPV4
            if meta["family"] == AddressFamily.IPV4.value
            else AddressFamily.IPV6
        )
    except KeyError as exc:
        raise RoutingError(f"dump metadata missing {exc}") from exc
    table = RoutingTable(vantage_asn=vantage_asn, family=family)
    for line in lines[2:]:
        parts = line.split()
        if len(parts) < 3:
            raise RoutingError(f"malformed dump line: {line!r}")
        prefix = Prefix.parse(parts[0])
        origin = int(parts[1])
        as_path = tuple(int(tok) for tok in parts[2:])
        table.insert(
            RouteEntry(prefix=prefix, origin_asn=origin, as_path=as_path)
        )
    if len(table) != int(meta.get("entries", len(table))):
        raise RoutingError(
            f"dump declares {meta.get('entries')} entries, parsed {len(table)}"
        )
    return table


class RouteChangeKind(Enum):
    """What happened to a prefix between two snapshots."""

    ANNOUNCED = "announced"   # present only in the newer table
    WITHDRAWN = "withdrawn"   # present only in the older table
    PATH_CHANGED = "path_changed"


@dataclass(frozen=True)
class RouteChange:
    """One prefix's change between two snapshots."""

    prefix: Prefix
    kind: RouteChangeKind
    old_path: tuple[int, ...] | None
    new_path: tuple[int, ...] | None


def diff_tables(old: RoutingTable, new: RoutingTable) -> list[RouteChange]:
    """Classify every per-prefix difference between two snapshots.

    Both tables must belong to the same vantage point and family —
    diffing across vantage points is a category error.
    """
    if old.family is not new.family:
        raise RoutingError("cannot diff tables of different families")
    if old.vantage_asn != new.vantage_asn:
        raise RoutingError("cannot diff tables of different vantage points")
    changes: list[RouteChange] = []
    for prefix in sorted(set(old.entries) | set(new.entries)):
        before = old.entries.get(prefix)
        after = new.entries.get(prefix)
        if before is None and after is not None:
            changes.append(
                RouteChange(prefix, RouteChangeKind.ANNOUNCED, None, after.as_path)
            )
        elif before is not None and after is None:
            changes.append(
                RouteChange(prefix, RouteChangeKind.WITHDRAWN, before.as_path, None)
            )
        elif (
            before is not None
            and after is not None
            and before.as_path != after.as_path
        ):
            changes.append(
                RouteChange(
                    prefix,
                    RouteChangeKind.PATH_CHANGED,
                    before.as_path,
                    after.as_path,
                )
            )
    return changes


def changed_origins(changes: Iterable[RouteChange]) -> set[int]:
    """Origin ASes whose routes changed (path changes only).

    This is the set the paper's sanitisation step needs: which
    destinations' performance transitions can be attributed to routing.
    """
    origins: set[int] = set()
    for change in changes:
        if change.kind is RouteChangeKind.PATH_CHANGED and change.new_path:
            origins.add(change.new_path[-1])
    return origins
