"""Linear regression and trend detection.

The last two columns of the paper's Table 3 count sites "for which a
linear regression revealed a steady upward (downward) trend in
performance" — non-stationary sites whose average is meaningless.
``detect_trend`` regresses performance on round index and reports a
trend when the slope is both statistically significant and practically
large (relative to the series mean).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as scipy_stats


@dataclass(frozen=True)
class LinearFit:
    """Ordinary least squares fit of y on x."""

    slope: float
    intercept: float
    r_value: float
    p_value: float
    stderr: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def linear_regression(x: Sequence[float], y: Sequence[float]) -> LinearFit:
    """OLS fit; requires at least three points and matching lengths."""
    if len(x) != len(y):
        raise ValueError("x and y must have the same length")
    if len(x) < 3:
        raise ValueError("need at least three points to regress")
    result = scipy_stats.linregress(x, y)
    p_value = float(result.pvalue)
    if math.isnan(p_value):  # constant input -> no evidence of a trend
        p_value = 1.0
    return LinearFit(
        slope=float(result.slope),
        intercept=float(result.intercept),
        r_value=float(result.rvalue) if not math.isnan(result.rvalue) else 0.0,
        p_value=p_value,
        stderr=float(result.stderr) if not math.isnan(result.stderr) else 0.0,
    )


@dataclass(frozen=True)
class TrendDetection:
    """A detected steady trend in a performance series."""

    direction: int  # +1 up, -1 down
    relative_slope: float  # per-round slope as a fraction of the mean
    p_value: float


def detect_trend(
    values: Sequence[float],
    slope_threshold: float = 0.004,
    p_value_threshold: float = 0.01,
) -> TrendDetection | None:
    """Detect a steady per-round trend in ``values``.

    The slope is normalised by the series mean so the threshold is a
    relative drift per round (e.g. 0.004 = 0.4%/round).
    """
    if len(values) < 3:
        return None
    series_mean = sum(values) / len(values)
    if series_mean <= 0:
        return None
    fit = linear_regression(list(range(len(values))), list(values))
    relative_slope = fit.slope / series_mean
    if abs(relative_slope) < slope_threshold or fit.p_value > p_value_threshold:
        return None
    return TrendDetection(
        direction=1 if relative_slope > 0 else -1,
        relative_slope=relative_slope,
        p_value=fit.p_value,
    )
