"""Confidence intervals.

The paper's stopping rule appears at two levels: within a round
("downloads repeat until the measured average download time is within 10%
of the mean with 95% confidence") and across rounds (a site is kept only
if the 95% CI of its per-round averages is within 10% of their mean).
Both reduce to a Student-t interval check.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache
from typing import Sequence

from scipy import stats as scipy_stats

from .descriptive import RunningStats


@dataclass(frozen=True)
class ConfidenceInterval:
    """A symmetric confidence interval around a sample mean."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """Half-width as a fraction of the mean (inf for a zero mean)."""
        if self.mean == 0:
            return math.inf
        return self.half_width / abs(self.mean)

    def meets_target(self, relative: float) -> bool:
        """The paper's criterion: CI within ``relative`` of the mean."""
        return self.relative_half_width <= relative


@lru_cache(maxsize=4096)
def t_critical(confidence: float, dof: int) -> float:
    """Two-sided Student-t critical value (cached; the download loop asks
    for the same few (confidence, dof) pairs millions of times)."""
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    if dof < 1:
        raise ValueError("need at least 1 degree of freedom")
    return float(scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))


def t_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> ConfidenceInterval:
    """Student-t CI of the mean of ``values`` (needs n >= 2)."""
    if len(values) < 2:
        raise ValueError("need at least two samples for a confidence interval")
    acc = RunningStats()
    acc.extend(values)
    return interval_from_stats(acc, confidence)


def interval_from_stats(
    acc: RunningStats, confidence: float = 0.95
) -> ConfidenceInterval:
    """CI from a Welford accumulator (the online form of the above)."""
    if acc.n < 2:
        raise ValueError("need at least two samples for a confidence interval")
    half = t_critical(confidence, acc.n - 1) * acc.stderr
    return ConfidenceInterval(
        mean=acc.mean, half_width=half, confidence=confidence, n=acc.n
    )


def within_relative(a: float, b: float, relative: float) -> bool:
    """True if ``a`` is within ``relative`` of ``b`` (the 10% comparisons).

    The paper's comparisons are anchored on IPv4: "IPv6 performance is
    within our 10% confidence interval of IPv4 performance".
    """
    if b == 0:
        return a == 0
    return abs(a - b) / abs(b) <= relative
