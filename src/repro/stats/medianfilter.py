"""Median filtering and step detection.

The paper (Table 3, footnote 16): "Transitions were detected using a
median filter of length 11 configured to report changes in performance of
magnitude greater than 30%, i.e., it triggered after 6 or more
consecutive samples 30% higher (lower) than the previous ones."

``detect_step`` implements exactly that: it median-filters the series,
then looks for a round where the filtered level settles at least 30%
above (below) the level established before it.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import median
from typing import Sequence


def median_filter(values: Sequence[float], length: int) -> list[float]:
    """Centered median filter with edge truncation (windows shrink at ends)."""
    if length < 1 or length % 2 == 0:
        raise ValueError("median filter length must be odd and >= 1")
    if not values:
        return []
    half = length // 2
    out: list[float] = []
    for i in range(len(values)):
        lo = max(0, i - half)
        hi = min(len(values), i + half + 1)
        out.append(median(values[lo:hi]))
    return out


@dataclass(frozen=True)
class StepDetection:
    """A detected sharp transition in a performance series."""

    index: int
    direction: int  # +1 up, -1 down
    before_level: float
    after_level: float

    @property
    def magnitude(self) -> float:
        """Relative change from before-level to after-level."""
        if self.before_level == 0:
            return float("inf")
        return abs(self.after_level - self.before_level) / self.before_level


def detect_step(
    values: Sequence[float],
    filter_length: int = 11,
    threshold: float = 0.30,
    persistence: int = 6,
) -> StepDetection | None:
    """Find the first sharp, persistent transition in ``values``.

    A step at index ``i`` requires ``persistence`` consecutive filtered
    samples from ``i`` on that all sit more than ``threshold`` above (or
    below) the median of the filtered samples before ``i``.
    """
    if persistence < 1:
        raise ValueError("persistence must be >= 1")
    if len(values) < persistence + 2:
        return None
    filtered = median_filter(values, filter_length)
    for i in range(2, len(filtered) - persistence + 1):
        before = median(filtered[:i])
        if before <= 0:
            continue
        window = filtered[i : i + persistence]
        if all(v > before * (1.0 + threshold) for v in window):
            return StepDetection(
                index=i,
                direction=+1,
                before_level=before,
                after_level=median(window),
            )
        if all(v < before * (1.0 - threshold) for v in window):
            return StepDetection(
                index=i,
                direction=-1,
                before_level=before,
                after_level=median(window),
            )
    return None
