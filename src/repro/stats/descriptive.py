"""Descriptive statistics.

:class:`RunningStats` is a Welford accumulator — the repeated-download
loop feeds it one measurement at a time and asks after each sample
whether the confidence target is met, so numerical stability at small n
matters more than vectorised throughput here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; raises on empty input (no silent NaNs)."""
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0.0 for a single value."""
    n = len(values)
    if n == 0:
        raise ValueError("stdev of empty sequence")
    if n == 1:
        return 0.0
    m = mean(values)
    return math.sqrt(sum((v - m) ** 2 for v in values) / (n - 1))


@dataclass(slots=True)
class RunningStats:
    """Welford's online mean/variance accumulator."""

    n: int = 0
    _mean: float = 0.0
    _m2: float = 0.0

    def add(self, value: float) -> None:
        self.n += 1
        delta = value - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (value - self._mean)

    def extend(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    @property
    def mean(self) -> float:
        if self.n == 0:
            raise ValueError("no samples accumulated")
        return self._mean

    @property
    def variance(self) -> float:
        """Sample variance (n-1); 0.0 below two samples."""
        if self.n < 2:
            return 0.0
        return self._m2 / (self.n - 1)

    @property
    def stdev(self) -> float:
        return math.sqrt(self.variance)

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.n == 0:
            raise ValueError("no samples accumulated")
        return self.stdev / math.sqrt(self.n)

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Chan-style parallel merge of two accumulators."""
        if other.n == 0:
            return RunningStats(self.n, self._mean, self._m2)
        if self.n == 0:
            return RunningStats(other.n, other._mean, other._m2)
        n = self.n + other.n
        delta = other._mean - self._mean
        merged_mean = self._mean + delta * other.n / n
        m2 = self._m2 + other._m2 + delta * delta * self.n * other.n / n
        return RunningStats(n, merged_mean, m2)
