"""Statistics primitives used by the monitor and the analysis pipeline."""

from .descriptive import RunningStats, mean, stdev
from .intervals import ConfidenceInterval, t_confidence_interval, within_relative
from .medianfilter import median_filter, detect_step
from .regression import LinearFit, linear_regression, detect_trend

__all__ = [
    "RunningStats",
    "mean",
    "stdev",
    "ConfidenceInterval",
    "t_confidence_interval",
    "within_relative",
    "median_filter",
    "detect_step",
    "LinearFit",
    "linear_regression",
    "detect_trend",
]
