"""Origin servers.

A server contributes two things to a measured speed: its base capacity
and its per-family efficiency.  The paper's factor (S): server-side IPv6
impairments (untuned stacks, software terminating v6 in userspace, v6 on
a weaker front-end) make an AS look worse over IPv6 even when the network
is fine — producing the zero-modes of Section 4.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.addresses import AddressFamily


@dataclass
class OriginServer:
    """One site's web server (or a CDN edge node).

    ``v6_efficiency`` is the multiplicative speed factor applied to IPv6
    service; 1.0 means the server is family-blind, values below 1 model
    the impaired-v6 population.
    """

    asn: int
    base_speed: float  # kbytes/sec before network effects
    v6_efficiency: float = 1.0
    v4_efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.base_speed <= 0:
            raise ValueError("base_speed must be positive")
        if not 0 < self.v6_efficiency <= 2.0 or not 0 < self.v4_efficiency <= 2.0:
            raise ValueError("efficiencies must be in (0, 2]")

    def efficiency(self, family: AddressFamily) -> float:
        if family is AddressFamily.IPV4:
            return self.v4_efficiency
        return self.v6_efficiency

    def speed(self, family: AddressFamily) -> float:
        """Family-specific server speed before path effects."""
        return self.base_speed * self.efficiency(family)

    @property
    def v6_impaired(self) -> bool:
        """True when IPv6 service is noticeably slower than IPv4 here."""
        return self.v6_efficiency < 0.9 * self.v4_efficiency
