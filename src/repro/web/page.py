"""Main pages.

The monitoring tool only ever fetches a site's main page and compares the
IPv4 and IPv6 byte counts (within 6% = "identical").  Most sites serve
the same bytes on both families; a small fraction serve different content
per family (v6-specific landing pages, different ad payloads), which the
identity check is designed to filter out.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.addresses import AddressFamily


@dataclass(frozen=True)
class WebPage:
    """A site's main page, with per-family byte counts."""

    v4_bytes: int
    v6_bytes: int

    def __post_init__(self) -> None:
        if self.v4_bytes <= 0 or self.v6_bytes <= 0:
            raise ValueError("page sizes must be positive")

    def size(self, family: AddressFamily) -> int:
        if family is AddressFamily.IPV4:
            return self.v4_bytes
        return self.v6_bytes

    def relative_size_difference(self) -> float:
        """``|v4 - v6|`` relative to the larger page."""
        larger = max(self.v4_bytes, self.v6_bytes)
        return abs(self.v4_bytes - self.v6_bytes) / larger

    def identical_within(self, threshold: float) -> bool:
        """The paper's identity check (byte counts within ``threshold``)."""
        return self.relative_size_difference() <= threshold

    @classmethod
    def same_content(cls, size_bytes: int) -> "WebPage":
        return cls(v4_bytes=size_bytes, v6_bytes=size_bytes)
