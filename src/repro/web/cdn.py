"""Content delivery networks.

In 2011 no major CDN offered production IPv6 (the paper cites Akamai's
status page), so a CDN customer's A record resolves into the CDN's AS
while its AAAA record still points at the origin — making the site a
**different-locations (DL)** site in the paper's taxonomy, and usually a
faster IPv4 experience (Table 6).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..net.addresses import AddressFamily
from .server import OriginServer


@dataclass(frozen=True)
class CDNProvider:
    """A CDN: one AS in the topology, broadly attached, v4-only by default."""

    name: str
    asn: int
    #: CDN edge capacity, usually above typical origin servers.
    edge_speed: float = 115.0
    dual_stack: bool = False

    def __post_init__(self) -> None:
        if not self.name or self.name != self.name.lower():
            raise ValueError("CDN names must be non-empty lowercase")
        if self.edge_speed <= 0:
            raise ValueError("edge_speed must be positive")

    def edge_hostname(self, site_name: str) -> str:
        """The CNAME target a customer's web name points at."""
        return f"{site_name}.{self.name}.net"

    def edge_server(self) -> OriginServer:
        """The edge node serving a customer's content."""
        return OriginServer(asn=self.asn, base_speed=self.edge_speed)

    def serves(self, family: AddressFamily) -> bool:
        """Whether the CDN serves a given family at all."""
        if family is AddressFamily.IPV4:
            return True
        return self.dual_stack


@dataclass(frozen=True)
class CdnDeployment:
    """A site's CDN subscription: which provider fronts which families."""

    provider: CDNProvider

    def fronted_families(self) -> tuple[AddressFamily, ...]:
        if self.provider.dual_stack:
            return (AddressFamily.IPV4, AddressFamily.IPV6)
        return (AddressFamily.IPV4,)
