"""The simulated HTTP GET.

:class:`HttpClient` is the seam between the monitoring tool and the
substrates: given a resolved address, it locates the serving endpoint,
obtains the forwarding path, and samples a download from the throughput
model.  Dependencies are injected as callables so the client is equally
usable against the full world or against hand-built fixtures in tests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..dataplane.path import ForwardingPath
from ..dataplane.performance import ThroughputModel
from ..errors import DownloadError, UnreachableError
from ..faults.plan import ServerFault
from ..net.addresses import Address, AddressFamily
from ..obs import metrics

#: deterministic work counters gated by the perf-regression harness
#: (module-cached: ``obs`` resets them in place).
_ENDPOINT_LOOKUPS = metrics.counter("web.endpoint_lookups")
_PATH_LOOKUPS = metrics.counter("web.path_lookups")
_SESSIONS = metrics.counter("web.sessions")


@dataclass(frozen=True)
class ContentEndpoint:
    """What serves a given (name, family, round): speed and page bytes."""

    site_id: int
    server_asn: int
    #: effective server-side speed (base x efficiency x behaviour) in kB/s.
    server_speed: float
    page_bytes: int

    def __post_init__(self) -> None:
        if self.server_speed <= 0:
            raise DownloadError("endpoint server_speed must be positive")
        if self.page_bytes <= 0:
            raise DownloadError("endpoint page_bytes must be positive")


#: (final_name, family, round) -> endpoint serving that name.
ContentLookup = Callable[[str, AddressFamily, int], ContentEndpoint]
#: (owner_asn, site_id, family, round) -> forwarding path or None.
PathProvider = Callable[[int, int, AddressFamily, int], Optional[ForwardingPath]]
#: address -> owning ASN.
OwnerLookup = Callable[[Address], int]
#: (site_id, family, round, fault_key) -> injected fault or None.
FaultHook = Callable[[int, AddressFamily, int, str], Optional[ServerFault]]
#: batched form: (site_id, family, round, fault_keys) -> one decision per key.
FaultHookBatch = Callable[
    [int, AddressFamily, int, "list[str]"], "list[Optional[ServerFault]]"
]


@dataclass(frozen=True, slots=True)
class DownloadResult:
    """One page download attempt — completed, or failed by a fault.

    Failed attempts (``ok`` False) carry the fault kind in ``failure``
    ("timeout" or "reset"), zero speed, and the simulated seconds the
    failed attempt burned; callers retry or record them as failed
    samples, never feed them into speed statistics.
    """

    final_name: str
    family: AddressFamily
    address: Address
    server_asn: int
    as_path: tuple[int, ...]
    page_bytes: int
    speed_kbytes_per_sec: float
    seconds: float
    ok: bool = True
    failure: str = ""


class DownloadSession:
    """One (name, address, family, round) with its lookups pinned.

    The repeated-download loop issues tens of GETs against the same
    coordinates; the endpoint, forwarding path, and round-mean speed are
    all functions of those coordinates alone, so a session resolves them
    once and every :meth:`get` only draws the per-sample speed.  The
    fault hook still runs per GET — each attempt is an independent draw
    from the fault plan.
    """

    __slots__ = (
        "_client",
        "final_name",
        "address",
        "family",
        "round_idx",
        "endpoint",
        "path",
        "round_mean",
        "_noise_sigma",
        "_page_kbytes",
    )

    def __init__(
        self,
        client: "HttpClient",
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
        endpoint: ContentEndpoint,
        path: ForwardingPath,
        round_mean: float,
    ) -> None:
        self._client = client
        self.final_name = final_name
        self.address = address
        self.family = family
        self.round_idx = round_idx
        self.endpoint = endpoint
        self.path = path
        self.round_mean = round_mean
        # Sampling constants, pinned so each GET is one Gaussian draw and
        # a couple of multiplies (same float expressions the model's
        # sample_download_speed / download_seconds evaluate).
        self._noise_sigma = client._model.config.measurement_noise_sigma
        self._page_kbytes = endpoint.page_bytes / 1000.0

    @property
    def has_fault_hook(self) -> bool:
        """Whether GETs consult a fault hook (callers can then skip
        building per-attempt fault keys entirely)."""
        return self._client._fault_hook is not None

    def get(self, rng: random.Random, fault_key: str = "") -> DownloadResult:
        """Fetch the pinned page once; one shared-RNG draw per sample."""
        client = self._client
        endpoint = self.endpoint
        if client._fault_hook is not None:
            fault = client._fault_hook(
                endpoint.site_id, self.family, self.round_idx, fault_key
            )
            if fault is not None:
                return DownloadResult(
                    final_name=self.final_name,
                    family=self.family,
                    address=self.address,
                    server_asn=endpoint.server_asn,
                    as_path=self.path.as_path,
                    page_bytes=endpoint.page_bytes,
                    speed_kbytes_per_sec=0.0,
                    seconds=fault.seconds,
                    ok=False,
                    failure=fault.kind,
                )
        sigma = self._noise_sigma
        if sigma > 0:
            speed = self.round_mean * math.exp(rng.gauss(0.0, sigma))
        else:
            speed = self.round_mean
        if speed <= 0:
            raise ValueError("speed must be positive")
        return DownloadResult(
            final_name=self.final_name,
            family=self.family,
            address=self.address,
            server_asn=endpoint.server_asn,
            as_path=self.path.as_path,
            page_bytes=endpoint.page_bytes,
            speed_kbytes_per_sec=speed,
            seconds=self._page_kbytes / speed,
        )


class HttpClient:
    """Simulates main-page downloads from one vantage point."""

    def __init__(
        self,
        model: ThroughputModel,
        content_lookup: ContentLookup,
        path_provider: PathProvider,
        owner_lookup: OwnerLookup,
        fault_hook: FaultHook | None = None,
        fault_hook_batch: FaultHookBatch | None = None,
    ) -> None:
        self._model = model
        self._content_lookup = content_lookup
        self._path_provider = path_provider
        self._owner_lookup = owner_lookup
        self._fault_hook = fault_hook
        self._fault_hook_batch = fault_hook_batch

    @property
    def model(self) -> ThroughputModel:
        """The throughput model downloads sample from (read-only)."""
        return self._model

    @property
    def has_fault_hook(self) -> bool:
        """Whether GETs consult a fault hook (mirrors the session flag)."""
        return self._fault_hook is not None

    def fault_batch(
        self,
        site_id: int,
        family: AddressFamily,
        round_idx: int,
        fault_keys: list[str],
    ) -> list[ServerFault | None]:
        """One fault decision per attempt key, for the batched monitor.

        Uses the batched hook when the world wired one in (one digest
        block per span of attempts); falls back to per-key scalar hook
        calls so hand-built test environments keep working unchanged.
        Element-for-element identical to per-GET scalar decisions.
        """
        if self._fault_hook_batch is not None:
            return self._fault_hook_batch(site_id, family, round_idx, fault_keys)
        hook = self._fault_hook
        if hook is None:
            return [None] * len(fault_keys)
        return [hook(site_id, family, round_idx, key) for key in fault_keys]

    def open(
        self,
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
    ) -> DownloadSession:
        """Resolve endpoint, path, and round mean once for repeated GETs.

        Raises :class:`UnreachableError` when no forwarding path exists
        (the destination is v6-dark from this vantage, say).  The round
        mean is hoisted here because it depends only on the session
        coordinates; its round noise comes from the model's private
        streams, so hoisting never touches the shared per-sample RNG.
        """
        if address.family is not family:
            raise DownloadError(
                f"address {address} is not an {family} address"
            )
        endpoint = self._content_lookup(final_name, family, round_idx)
        _ENDPOINT_LOOKUPS.inc()
        owner_asn = self._owner_lookup(address)
        path = self._path_provider(owner_asn, endpoint.site_id, family, round_idx)
        _PATH_LOOKUPS.inc()
        if path is None:
            raise UnreachableError(
                f"no {family} path to AS{owner_asn} for {final_name}"
            )
        round_mean = self._model.round_mean_speed(
            endpoint.server_speed, path, endpoint.site_id, round_idx
        )
        _SESSIONS.inc()
        return DownloadSession(
            client=self,
            final_name=final_name,
            address=address,
            family=family,
            round_idx=round_idx,
            endpoint=endpoint,
            path=path,
            round_mean=round_mean,
        )

    def open_many(
        self,
        requests: "list[tuple[str, Address, AddressFamily, int]]",
    ) -> "list[DownloadSession | None]":
        """Open a batch of sessions; ``None`` marks unreachable coordinates.

        The batched round plan opens every dual-stack site's sessions in
        one sweep: lookups run per request (hitting the same world-side
        caches the scalar open does), the latent means are evaluated
        through :meth:`ThroughputModel.round_mean_speed_batch`, and the
        work counters advance by the same totals the equivalent scalar
        opens would — an unreachable request still costs one endpoint
        and one path lookup but never a session, exactly like
        :meth:`open` raising :class:`UnreachableError`.
        """
        content_lookup = self._content_lookup
        path_provider = self._path_provider
        owner_lookup = self._owner_lookup
        endpoints: list[ContentEndpoint | None] = []
        paths: list[ForwardingPath | None] = []
        for final_name, address, family, round_idx in requests:
            if address.family is not family:
                raise DownloadError(
                    f"address {address} is not an {family} address"
                )
            endpoint = content_lookup(final_name, family, round_idx)
            owner_asn = owner_lookup(address)
            path = path_provider(owner_asn, endpoint.site_id, family, round_idx)
            endpoints.append(endpoint)
            paths.append(path)
        _ENDPOINT_LOOKUPS.inc(len(requests))
        _PATH_LOOKUPS.inc(len(requests))
        reachable = [idx for idx, path in enumerate(paths) if path is not None]
        means = self._model.round_mean_speed_batch(
            [endpoints[idx].server_speed for idx in reachable],
            [paths[idx] for idx in reachable],
            [endpoints[idx].site_id for idx in reachable],
            requests[0][3] if requests else 0,
        )
        sessions: list[DownloadSession | None] = [None] * len(requests)
        for mean, idx in zip(means, reachable):
            final_name, address, family, round_idx = requests[idx]
            sessions[idx] = DownloadSession(
                client=self,
                final_name=final_name,
                address=address,
                family=family,
                round_idx=round_idx,
                endpoint=endpoints[idx],
                path=paths[idx],
                round_mean=mean,
            )
        _SESSIONS.inc(len(reachable))
        return sessions

    def get(
        self,
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
        rng: random.Random,
        fault_key: str = "",
    ) -> DownloadResult:
        """Fetch the main page at ``address`` once (one-shot session).

        Raises :class:`UnreachableError` when no forwarding path exists.
        With a fault hook installed, the attempt may instead come back
        failed (``ok`` False); ``fault_key`` names the attempt (probe,
        loop sample, retry) so every GET is an independent draw from the
        fault plan.
        """
        return self.open(final_name, address, family, round_idx).get(
            rng, fault_key
        )
