"""The simulated HTTP GET.

:class:`HttpClient` is the seam between the monitoring tool and the
substrates: given a resolved address, it locates the serving endpoint,
obtains the forwarding path, and samples a download from the throughput
model.  Dependencies are injected as callables so the client is equally
usable against the full world or against hand-built fixtures in tests.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..dataplane.path import ForwardingPath
from ..dataplane.performance import ThroughputModel
from ..errors import DownloadError, UnreachableError
from ..faults.plan import ServerFault
from ..net.addresses import Address, AddressFamily


@dataclass(frozen=True)
class ContentEndpoint:
    """What serves a given (name, family, round): speed and page bytes."""

    site_id: int
    server_asn: int
    #: effective server-side speed (base x efficiency x behaviour) in kB/s.
    server_speed: float
    page_bytes: int

    def __post_init__(self) -> None:
        if self.server_speed <= 0:
            raise DownloadError("endpoint server_speed must be positive")
        if self.page_bytes <= 0:
            raise DownloadError("endpoint page_bytes must be positive")


#: (final_name, family, round) -> endpoint serving that name.
ContentLookup = Callable[[str, AddressFamily, int], ContentEndpoint]
#: (owner_asn, site_id, family, round) -> forwarding path or None.
PathProvider = Callable[[int, int, AddressFamily, int], Optional[ForwardingPath]]
#: address -> owning ASN.
OwnerLookup = Callable[[Address], int]
#: (site_id, family, round, fault_key) -> injected fault or None.
FaultHook = Callable[[int, AddressFamily, int, str], Optional[ServerFault]]


@dataclass(frozen=True)
class DownloadResult:
    """One page download attempt — completed, or failed by a fault.

    Failed attempts (``ok`` False) carry the fault kind in ``failure``
    ("timeout" or "reset"), zero speed, and the simulated seconds the
    failed attempt burned; callers retry or record them as failed
    samples, never feed them into speed statistics.
    """

    final_name: str
    family: AddressFamily
    address: Address
    server_asn: int
    as_path: tuple[int, ...]
    page_bytes: int
    speed_kbytes_per_sec: float
    seconds: float
    ok: bool = True
    failure: str = ""


class HttpClient:
    """Simulates main-page downloads from one vantage point."""

    def __init__(
        self,
        model: ThroughputModel,
        content_lookup: ContentLookup,
        path_provider: PathProvider,
        owner_lookup: OwnerLookup,
        fault_hook: FaultHook | None = None,
    ) -> None:
        self._model = model
        self._content_lookup = content_lookup
        self._path_provider = path_provider
        self._owner_lookup = owner_lookup
        self._fault_hook = fault_hook

    def get(
        self,
        final_name: str,
        address: Address,
        family: AddressFamily,
        round_idx: int,
        rng: random.Random,
        fault_key: str = "",
    ) -> DownloadResult:
        """Fetch the main page at ``address`` once.

        Raises :class:`UnreachableError` when no forwarding path exists
        (the destination is v6-dark from this vantage, say).  With a
        fault hook installed, the attempt may instead come back failed
        (``ok`` False); ``fault_key`` names the attempt (probe, loop
        sample, retry) so every GET is an independent draw from the
        fault plan.
        """
        if address.family is not family:
            raise DownloadError(
                f"address {address} is not an {family} address"
            )
        endpoint = self._content_lookup(final_name, family, round_idx)
        owner_asn = self._owner_lookup(address)
        path = self._path_provider(owner_asn, endpoint.site_id, family, round_idx)
        if path is None:
            raise UnreachableError(
                f"no {family} path to AS{owner_asn} for {final_name}"
            )
        if self._fault_hook is not None:
            fault = self._fault_hook(endpoint.site_id, family, round_idx, fault_key)
            if fault is not None:
                return DownloadResult(
                    final_name=final_name,
                    family=family,
                    address=address,
                    server_asn=endpoint.server_asn,
                    as_path=path.as_path,
                    page_bytes=endpoint.page_bytes,
                    speed_kbytes_per_sec=0.0,
                    seconds=fault.seconds,
                    ok=False,
                    failure=fault.kind,
                )
        round_mean = self._model.round_mean_speed(
            endpoint.server_speed, path, endpoint.site_id, round_idx
        )
        speed = self._model.sample_download_speed(round_mean, rng)
        seconds = self._model.download_seconds(endpoint.page_bytes, speed)
        return DownloadResult(
            final_name=final_name,
            family=family,
            address=address,
            server_asn=endpoint.server_asn,
            as_path=path.as_path,
            page_bytes=endpoint.page_bytes,
            speed_kbytes_per_sec=speed,
            seconds=seconds,
        )
