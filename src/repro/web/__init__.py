"""Web substrate: pages, origin servers, CDNs, and the simulated HTTP GET."""

from .page import WebPage
from .server import OriginServer
from .cdn import CDNProvider, CdnDeployment
from .http import DownloadResult, HttpClient
from .happyeyeballs import (
    HappyEyeballsClient,
    RaceOutcome,
    race_environment,
    summarise_races,
)

__all__ = [
    "WebPage",
    "OriginServer",
    "CDNProvider",
    "CdnDeployment",
    "DownloadResult",
    "HttpClient",
    "HappyEyeballsClient",
    "RaceOutcome",
    "race_environment",
    "summarise_races",
]
