"""Happy Eyeballs (RFC 6555) — dual-stack connection racing.

A future-work thread the paper opens: if IPv6 underperforms on some
paths, what do *clients* experience once browsers race connections?
RFC 6555 answers: try IPv6 first, fall back to IPv4 if the v6 connection
hasn't completed within a grace period (~300 ms in 2012 implementations,
the "Preference" delay).  This module models that race on top of the
reproduction's RTT model, so one can quantify how often 2011-era routing
would still have pushed users onto IPv6 — and at what latency cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..dataplane.latency import LatencyModel
from ..dataplane.path import ForwardingPath
from ..errors import ConfigError
from ..net.addresses import AddressFamily

#: RFC 6555 recommends waiting 150-250 ms for IPv6 before starting IPv4;
#: 300 ms matches early browser implementations.
DEFAULT_PREFERENCE_DELAY_MS = 300.0


@dataclass(frozen=True)
class RaceOutcome:
    """Result of one connection race."""

    winner: AddressFamily
    connect_ms: float
    v6_rtt_ms: float | None
    v4_rtt_ms: float

    @property
    def v6_used(self) -> bool:
        return self.winner is AddressFamily.IPV6

    @property
    def fallback_penalty_ms(self) -> float:
        """Extra wait the user paid versus always connecting over IPv4."""
        return max(0.0, self.connect_ms - self.v4_rtt_ms)


class HappyEyeballsClient:
    """Races IPv6 against delayed IPv4 per RFC 6555.

    The connection time over a family is approximated as one RTT (the
    TCP handshake's SYN/SYN-ACK dominates).  IPv6 starts at t=0; IPv4
    starts at ``preference_delay_ms``; the first to complete wins.
    """

    def __init__(
        self,
        latency: LatencyModel,
        preference_delay_ms: float = DEFAULT_PREFERENCE_DELAY_MS,
    ) -> None:
        if preference_delay_ms < 0:
            raise ConfigError("preference_delay_ms must be >= 0")
        self.latency = latency
        self.preference_delay_ms = preference_delay_ms

    def race(
        self,
        v4_path: ForwardingPath,
        v6_path: ForwardingPath | None,
        rng: random.Random,
    ) -> RaceOutcome:
        """Run one race; ``v6_path=None`` models a v4-only destination."""
        v4_rtt = self.latency.sample_rtt_ms(v4_path, rng)
        if v6_path is None:
            return RaceOutcome(
                winner=AddressFamily.IPV4,
                connect_ms=v4_rtt,
                v6_rtt_ms=None,
                v4_rtt_ms=v4_rtt,
            )
        v6_rtt = self.latency.sample_rtt_ms(v6_path, rng)
        v6_done = v6_rtt
        v4_done = self.preference_delay_ms + v4_rtt
        if v6_done <= v4_done:
            winner, connect = AddressFamily.IPV6, v6_done
        else:
            winner, connect = AddressFamily.IPV4, v4_done
        return RaceOutcome(
            winner=winner,
            connect_ms=connect,
            v6_rtt_ms=v6_rtt,
            v4_rtt_ms=v4_rtt,
        )


@dataclass(frozen=True)
class RaceStatistics:
    """Aggregates over many races."""

    n_races: int
    v6_share: float
    mean_connect_ms: float
    mean_fallback_penalty_ms: float


def summarise_races(outcomes: Iterable[RaceOutcome]) -> RaceStatistics:
    """Aggregate a batch of race outcomes."""
    outcomes = list(outcomes)
    if not outcomes:
        return RaceStatistics(0, 0.0, 0.0, 0.0)
    return RaceStatistics(
        n_races=len(outcomes),
        v6_share=sum(o.v6_used for o in outcomes) / len(outcomes),
        mean_connect_ms=sum(o.connect_ms for o in outcomes) / len(outcomes),
        mean_fallback_penalty_ms=(
            sum(o.fallback_penalty_ms for o in outcomes) / len(outcomes)
        ),
    )
