"""Happy Eyeballs (RFC 6555) — dual-stack connection racing.

A future-work thread the paper opens: if IPv6 underperforms on some
paths, what do *clients* experience once browsers race connections?
RFC 6555 answers: try IPv6 first, fall back to IPv4 if the v6 connection
hasn't completed within a grace period (~300 ms in 2012 implementations,
the "Preference" delay).  This module models that race on top of the
reproduction's RTT model, so one can quantify how often 2011-era routing
would still have pushed users onto IPv6 — and at what latency cost.

:func:`race_environment` is the composition hook into the rest of the
pipeline: it resolves a destination through a vantage point's real
resolver and pins the same forwarding paths the monitor downloads over,
so races run against the campaign's routing — including NAT64, where a
DNS64 vantage races a translated v6 leg against the direct v4 one.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable

from ..dataplane.latency import LatencyModel
from ..dataplane.path import ForwardingPath
from ..errors import ConfigError, UnreachableError
from ..net.addresses import AddressFamily

#: RFC 6555 recommends waiting 150-250 ms for IPv6 before starting IPv4;
#: 300 ms matches early browser implementations.
DEFAULT_PREFERENCE_DELAY_MS = 300.0


@dataclass(frozen=True)
class RaceOutcome:
    """Result of one connection race."""

    winner: AddressFamily
    connect_ms: float
    v6_rtt_ms: float | None
    v4_rtt_ms: float

    @property
    def v6_used(self) -> bool:
        return self.winner is AddressFamily.IPV6

    @property
    def fallback_penalty_ms(self) -> float:
        """Extra wait the user paid versus always connecting over IPv4."""
        return max(0.0, self.connect_ms - self.v4_rtt_ms)


class HappyEyeballsClient:
    """Races IPv6 against delayed IPv4 per RFC 6555.

    The connection time over a family is approximated as one RTT (the
    TCP handshake's SYN/SYN-ACK dominates).  IPv6 starts at t=0; IPv4
    starts at ``preference_delay_ms``; the first to complete wins.
    """

    def __init__(
        self,
        latency: LatencyModel,
        preference_delay_ms: float = DEFAULT_PREFERENCE_DELAY_MS,
    ) -> None:
        if preference_delay_ms < 0:
            raise ConfigError("preference_delay_ms must be >= 0")
        self.latency = latency
        self.preference_delay_ms = preference_delay_ms

    def race(
        self,
        v4_path: ForwardingPath,
        v6_path: ForwardingPath | None,
        rng: random.Random,
    ) -> RaceOutcome:
        """Run one race; ``v6_path=None`` models a v4-only destination."""
        v4_rtt = self.latency.sample_rtt_ms(v4_path, rng)
        if v6_path is None:
            return RaceOutcome(
                winner=AddressFamily.IPV4,
                connect_ms=v4_rtt,
                v6_rtt_ms=None,
                v4_rtt_ms=v4_rtt,
            )
        v6_rtt = self.latency.sample_rtt_ms(v6_path, rng)
        v6_done = v6_rtt
        v4_done = self.preference_delay_ms + v4_rtt
        if v6_done <= v4_done:
            winner, connect = AddressFamily.IPV6, v6_done
        else:
            winner, connect = AddressFamily.IPV4, v4_done
        return RaceOutcome(
            winner=winner,
            connect_ms=connect,
            v6_rtt_ms=v6_rtt,
            v4_rtt_ms=v4_rtt,
        )


def race_environment(
    client: HappyEyeballsClient,
    env,
    name: str,
    round_idx: int,
    rng: random.Random,
) -> RaceOutcome | None:
    """Race one destination over a vantage point's real paths.

    ``env`` is anything shaped like
    :class:`~repro.monitor.tool.VantageEnvironment` (``resolver``,
    ``client``, ``clock``) — typically the object
    ``World.environment_for`` returns, so the race uses the same DNS
    answers and pinned forwarding paths the monitor measures over.  On
    a DNS64 vantage, a v4-only destination's AAAA is synthesized and
    its v6 leg is the NAT64-translated path: the race then quantifies
    the RFC 6555 experience behind a translator.

    Returns ``None`` when the destination has no IPv4 address or no
    IPv4 path — the race's baseline leg cannot start.  A missing or
    unreachable v6 leg is a valid race (IPv4 wins unopposed).
    """
    now = env.clock.time_of_round(round_idx)
    results = env.resolver.query_both(name, now)
    res4 = results[AddressFamily.IPV4]
    res6 = results[AddressFamily.IPV6]
    if res4 is None or not res4.addresses:
        return None
    try:
        session4 = env.client.open(
            res4.final_name, res4.addresses[0], AddressFamily.IPV4, round_idx
        )
    except UnreachableError:
        return None
    v6_path: ForwardingPath | None = None
    if res6 is not None and res6.addresses:
        try:
            session6 = env.client.open(
                res6.final_name,
                res6.addresses[0],
                AddressFamily.IPV6,
                round_idx,
            )
        except UnreachableError:
            pass
        else:
            v6_path = session6.path
    return client.race(session4.path, v6_path, rng)


@dataclass(frozen=True)
class RaceStatistics:
    """Aggregates over many races."""

    n_races: int
    v6_share: float
    mean_connect_ms: float
    mean_fallback_penalty_ms: float


def summarise_races(outcomes: Iterable[RaceOutcome]) -> RaceStatistics:
    """Aggregate a batch of race outcomes."""
    outcomes = list(outcomes)
    if not outcomes:
        return RaceStatistics(0, 0.0, 0.0, 0.0)
    return RaceStatistics(
        n_races=len(outcomes),
        v6_share=sum(o.v6_used for o in outcomes) / len(outcomes),
        mean_connect_ms=sum(o.connect_ms for o in outcomes) / len(outcomes),
        mean_fallback_penalty_ms=(
            sum(o.fallback_penalty_ms for o in outcomes) / len(outcomes)
        ),
    )
