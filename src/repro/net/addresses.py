"""IPv4 / IPv6 address and prefix value types.

Implemented from scratch (rather than on :mod:`ipaddress`) so the codec
behaviour is part of the reproduced system and can be property-tested:
parsing, canonical RFC 5952 text form for IPv6 (longest zero-run
compression, lowercase hex), prefix containment, and ordering.

Addresses are immutable and hashable; they are used as DNS record values
and as keys in routing tables.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import total_ordering
from typing import Union

from ..errors import AddressError


class AddressFamily(Enum):
    """The two address families the paper compares."""

    IPV4 = "IPv4"
    IPV6 = "IPv6"

    # Members are singletons; identity hashing matches the default
    # name-string hash but is one C-level call in the per-family dicts
    # the monitor builds for every site-round.
    __hash__ = object.__hash__

    @property
    def bits(self) -> int:
        """Address width in bits."""
        return 32 if self is AddressFamily.IPV4 else 128

    @property
    def other(self) -> "AddressFamily":
        """The opposite family (handy when iterating v4/v6 symmetrically)."""
        if self is AddressFamily.IPV4:
            return AddressFamily.IPV6
        return AddressFamily.IPV4

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@total_ordering
@dataclass(frozen=True)
class IPv4Address:
    """A 32-bit IPv4 address."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**32:
            raise AddressError(f"IPv4 value out of range: {self.value}")

    @property
    def family(self) -> AddressFamily:
        return AddressFamily.IPV4

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse dotted-quad text (strict: exactly 4 decimal octets)."""
        parts = text.split(".")
        if len(parts) != 4:
            raise AddressError(f"not a dotted quad: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise AddressError(f"bad IPv4 octet {part!r} in {text!r}")
            octet = int(part)
            if octet > 255:
                raise AddressError(f"IPv4 octet out of range in {text!r}")
            value = (value << 8) | octet
        return cls(value)

    def __str__(self) -> str:
        return ".".join(
            str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0)
        )

    def __lt__(self, other: "IPv4Address") -> bool:
        if not isinstance(other, IPv4Address):
            return NotImplemented
        return self.value < other.value

    def __int__(self) -> int:
        return self.value


@total_ordering
@dataclass(frozen=True)
class IPv6Address:
    """A 128-bit IPv6 address with RFC 5952 canonical text output."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 2**128:
            raise AddressError(f"IPv6 value out of range: {self.value}")

    @property
    def family(self) -> AddressFamily:
        return AddressFamily.IPV6

    @property
    def groups(self) -> tuple[int, ...]:
        """The eight 16-bit groups, most significant first."""
        return tuple(
            (self.value >> shift) & 0xFFFF for shift in range(112, -16, -16)
        )

    @classmethod
    def parse(cls, text: str) -> "IPv6Address":
        """Parse IPv6 text, including ``::`` compression.

        Embedded IPv4 dotted-quad tails (``::ffff:1.2.3.4``) are accepted.
        """
        if text.count("::") > 1:
            raise AddressError(f"multiple '::' in {text!r}")
        if ":::" in text:
            raise AddressError(f"':::' in {text!r}")

        # Handle an embedded IPv4 tail by converting it to two groups.
        if "." in text:
            head, _, tail = text.rpartition(":")
            if not head:
                raise AddressError(f"bad embedded IPv4 in {text!r}")
            v4 = IPv4Address.parse(tail)
            text = f"{head}:{v4.value >> 16:x}:{v4.value & 0xFFFF:x}"

        if "::" in text:
            left_text, right_text = text.split("::")
            left = left_text.split(":") if left_text else []
            right = right_text.split(":") if right_text else []
            if len(left) + len(right) > 7:
                raise AddressError(f"too many groups in {text!r}")
            middle = ["0"] * (8 - len(left) - len(right))
            parts = left + middle + right
        else:
            parts = text.split(":")
            if len(parts) != 8:
                raise AddressError(f"expected 8 groups in {text!r}")

        value = 0
        for part in parts:
            if not part or len(part) > 4:
                raise AddressError(f"bad group {part!r} in {text!r}")
            try:
                group = int(part, 16)
            except ValueError as exc:
                raise AddressError(f"bad hex group {part!r} in {text!r}") from exc
            value = (value << 16) | group
        return cls(value)

    def __str__(self) -> str:
        groups = self.groups
        # Find the longest run of zero groups (length >= 2) for compression.
        best_start, best_len = -1, 0
        run_start, run_len = -1, 0
        for i, g in enumerate(groups):
            if g == 0:
                if run_start < 0:
                    run_start, run_len = i, 0
                run_len += 1
                if run_len > best_len:
                    best_start, best_len = run_start, run_len
            else:
                run_start, run_len = -1, 0
        if best_len < 2:
            return ":".join(f"{g:x}" for g in groups)
        head = ":".join(f"{g:x}" for g in groups[:best_start])
        tail = ":".join(f"{g:x}" for g in groups[best_start + best_len:])
        return f"{head}::{tail}"

    def __lt__(self, other: "IPv6Address") -> bool:
        if not isinstance(other, IPv6Address):
            return NotImplemented
        return self.value < other.value

    def __int__(self) -> int:
        return self.value


Address = Union[IPv4Address, IPv6Address]


def parse_address(text: str) -> Address:
    """Parse either family from text, dispatching on the separator."""
    if ":" in text:
        return IPv6Address.parse(text)
    return IPv4Address.parse(text)


@total_ordering
@dataclass(frozen=True)
class Prefix:
    """An address prefix (network) in either family.

    ``network`` is the masked integer value; constructing a prefix with
    host bits set raises :class:`AddressError` (be strict, catch bugs).
    """

    family: AddressFamily
    network: int
    length: int

    def __post_init__(self) -> None:
        bits = self.family.bits
        if not 0 <= self.length <= bits:
            raise AddressError(
                f"prefix length {self.length} out of range for {self.family}"
            )
        if not 0 <= self.network < 2**bits:
            raise AddressError("network value out of range")
        if self.network & self.host_mask:
            raise AddressError(
                f"host bits set in prefix {self.network:#x}/{self.length}"
            )

    @property
    def host_bits(self) -> int:
        return self.family.bits - self.length

    @property
    def host_mask(self) -> int:
        return (1 << self.host_bits) - 1

    @property
    def netmask(self) -> int:
        return ((1 << self.family.bits) - 1) ^ self.host_mask

    @classmethod
    def parse(cls, text: str) -> "Prefix":
        """Parse ``address/length`` text in either family."""
        addr_text, sep, len_text = text.partition("/")
        if not sep or not len_text.isdigit():
            raise AddressError(f"not a prefix: {text!r}")
        address = parse_address(addr_text)
        return cls(address.family, int(address), int(len_text))

    @classmethod
    def of(cls, address: Address, length: int) -> "Prefix":
        """The prefix of the given length containing ``address``."""
        bits = address.family.bits
        if not 0 <= length <= bits:
            raise AddressError(f"bad prefix length {length}")
        mask = ((1 << bits) - 1) ^ ((1 << (bits - length)) - 1)
        return cls(address.family, int(address) & mask, length)

    def contains(self, item: Union[Address, "Prefix"]) -> bool:
        """True if an address, or every address of a prefix, is inside us."""
        if isinstance(item, Prefix):
            if item.family is not self.family or item.length < self.length:
                return False
            return (item.network & self.netmask) == self.network
        if item.family is not self.family:
            return False
        return (int(item) & self.netmask) == self.network

    def address(self, host: int) -> Address:
        """The ``host``-th address inside this prefix."""
        if not 0 <= host <= self.host_mask:
            raise AddressError(
                f"host index {host} out of range for /{self.length}"
            )
        value = self.network | host
        if self.family is AddressFamily.IPV4:
            return IPv4Address(value)
        return IPv6Address(value)

    def subnets(self, new_length: int) -> list["Prefix"]:
        """Split into all subnets of ``new_length`` (bounded, be careful)."""
        if new_length < self.length or new_length > self.family.bits:
            raise AddressError(f"cannot split /{self.length} into /{new_length}")
        count = 1 << (new_length - self.length)
        if count > 1 << 20:
            raise AddressError("refusing to enumerate more than 2^20 subnets")
        step = 1 << (self.family.bits - new_length)
        return [
            Prefix(self.family, self.network + i * step, new_length)
            for i in range(count)
        ]

    def __str__(self) -> str:
        if self.family is AddressFamily.IPV4:
            return f"{IPv4Address(self.network)}/{self.length}"
        return f"{IPv6Address(self.network)}/{self.length}"

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return (self.family.value, self.network, self.length) < (
            other.family.value,
            other.network,
            other.length,
        )
