"""RIR-style prefix allocation.

Each AS receives one IPv4 block and (if v6-enabled) one IPv6 block.  The
allocator hands out consecutive, non-overlapping blocks from
registry-style super-blocks, mimicking how RIRs carve allocations out of
their unallocated pools.  6to4 ASes derive their IPv6 prefix from their
IPv4 block per RFC 3056 instead of receiving a native allocation.
"""

from __future__ import annotations

from .addresses import AddressFamily, IPv4Address, Prefix
from ..errors import AllocationError

#: The registry pool we carve IPv4 allocations from (a fictional /4,
#: room for 4096 /16 allocations - enough for multi-thousand-AS worlds).
IPV4_POOL = Prefix.parse("16.0.0.0/4")
#: The registry pool for native IPv6 allocations (documentation-style).
IPV6_POOL = Prefix.parse("2001:db8::/32")
#: Default allocation sizes.
IPV4_ALLOC_LEN = 16
IPV6_ALLOC_LEN = 48


class PrefixAllocator:
    """Sequentially allocates non-overlapping blocks per family.

    The allocator remembers which AS owns which prefix, supporting reverse
    lookup (longest-prefix is unnecessary: allocations never nest).
    """

    def __init__(
        self,
        v4_pool: Prefix = IPV4_POOL,
        v6_pool: Prefix = IPV6_POOL,
        v4_alloc_len: int = IPV4_ALLOC_LEN,
        v6_alloc_len: int = IPV6_ALLOC_LEN,
    ) -> None:
        if v4_pool.family is not AddressFamily.IPV4:
            raise AllocationError("v4_pool must be an IPv4 prefix")
        if v6_pool.family is not AddressFamily.IPV6:
            raise AllocationError("v6_pool must be an IPv6 prefix")
        if v4_alloc_len < v4_pool.length or v6_alloc_len < v6_pool.length:
            raise AllocationError("allocation length shorter than pool")
        self._pools = {AddressFamily.IPV4: v4_pool, AddressFamily.IPV6: v6_pool}
        self._alloc_lens = {
            AddressFamily.IPV4: v4_alloc_len,
            AddressFamily.IPV6: v6_alloc_len,
        }
        self._next_index = {AddressFamily.IPV4: 0, AddressFamily.IPV6: 0}
        self._by_asn: dict[tuple[int, AddressFamily], Prefix] = {}
        self._by_prefix: dict[Prefix, int] = {}

    def allocate(self, asn: int, family: AddressFamily) -> Prefix:
        """Allocate the next free block of ``family`` to ``asn``.

        An AS can hold at most one block per family; repeated calls return
        the existing block.
        """
        key = (asn, family)
        existing = self._by_asn.get(key)
        if existing is not None:
            return existing
        pool = self._pools[family]
        alloc_len = self._alloc_lens[family]
        index = self._next_index[family]
        capacity = 1 << (alloc_len - pool.length)
        if index >= capacity:
            raise AllocationError(f"{family} pool exhausted after {index} blocks")
        step = 1 << (family.bits - alloc_len)
        prefix = Prefix(family, pool.network + index * step, alloc_len)
        self._next_index[family] = index + 1
        self._by_asn[key] = prefix
        self._by_prefix[prefix] = asn
        return prefix

    def register_6to4(self, asn: int) -> Prefix:
        """Derive and register a 6to4 prefix (RFC 3056) for ``asn``.

        The AS must already hold an IPv4 block; its 6to4 prefix is
        ``2002:V4ADDR::/48`` built from the first address of that block.
        """
        v4 = self._by_asn.get((asn, AddressFamily.IPV4))
        if v4 is None:
            raise AllocationError(f"AS{asn} has no IPv4 block to derive 6to4 from")
        key = (asn, AddressFamily.IPV6)
        existing = self._by_asn.get(key)
        if existing is not None:
            return existing
        v4_head = IPv4Address(v4.network)
        network = (0x2002 << 112) | (int(v4_head) << 80)
        prefix = Prefix(AddressFamily.IPV6, network, 48)
        self._by_asn[key] = prefix
        self._by_prefix[prefix] = asn
        return prefix

    def prefix_of(self, asn: int, family: AddressFamily) -> Prefix:
        """The block held by ``asn`` in ``family`` (KeyError-free API)."""
        prefix = self._by_asn.get((asn, family))
        if prefix is None:
            raise AllocationError(f"AS{asn} holds no {family} block")
        return prefix

    def has_prefix(self, asn: int, family: AddressFamily) -> bool:
        return (asn, family) in self._by_asn

    def owner_of(self, prefix: Prefix) -> int:
        """The AS that holds ``prefix``."""
        asn = self._by_prefix.get(prefix)
        if asn is None:
            raise AllocationError(f"unallocated prefix {prefix}")
        return asn

    def owner_of_address(self, address) -> int:
        """The AS whose block contains ``address``.

        O(1): allocations are uniform-length blocks, so masking the address
        to the allocation length identifies the block directly; 6to4
        prefixes are resolved via their embedded IPv4 address (RFC 3056).
        """
        family = address.family
        candidate = Prefix.of(address, self._alloc_lens[family])
        asn = self._by_prefix.get(candidate)
        if asn is not None:
            return asn
        if family is AddressFamily.IPV6 and (int(address) >> 112) == 0x2002:
            embedded_v4 = IPv4Address((int(address) >> 80) & 0xFFFFFFFF)
            return self.owner_of_address(embedded_v4)
        # Fall back to a scan (covers custom, non-uniform registrations).
        for prefix, owner in self._by_prefix.items():
            if prefix.contains(address):
                return owner
        raise AllocationError(f"no allocation contains {address}")

    def allocations(self, family: AddressFamily) -> dict[int, Prefix]:
        """All allocations of one family, as ``{asn: prefix}``."""
        return {
            asn: prefix
            for (asn, fam), prefix in self._by_asn.items()
            if fam is family
        }
