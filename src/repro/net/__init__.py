"""Network-layer value types: addresses, prefixes, allocation, tunnels."""

from .addresses import (
    AddressFamily,
    IPv4Address,
    IPv6Address,
    Prefix,
    parse_address,
)
from .allocation import PrefixAllocator
from .tunnels import Tunnel, TunnelKind, SIX_TO_FOUR_PREFIX, is_6to4

__all__ = [
    "AddressFamily",
    "IPv4Address",
    "IPv6Address",
    "Prefix",
    "parse_address",
    "PrefixAllocator",
    "Tunnel",
    "TunnelKind",
    "SIX_TO_FOUR_PREFIX",
    "is_6to4",
]
