"""Network-layer value types: addresses, prefixes, allocation, tunnels."""

from .addresses import (
    AddressFamily,
    IPv4Address,
    IPv6Address,
    Prefix,
    parse_address,
)
from .allocation import PrefixAllocator
from .nat64 import (
    NAT64_PREFIX,
    Nat64Gateway,
    extract_ipv4,
    is_nat64_mapped,
    synthesize_aaaa,
)
from .tunnels import Tunnel, TunnelKind, SIX_TO_FOUR_PREFIX, is_6to4

__all__ = [
    "AddressFamily",
    "IPv4Address",
    "IPv6Address",
    "Prefix",
    "parse_address",
    "PrefixAllocator",
    "NAT64_PREFIX",
    "Nat64Gateway",
    "extract_ipv4",
    "is_nat64_mapped",
    "synthesize_aaaa",
    "Tunnel",
    "TunnelKind",
    "SIX_TO_FOUR_PREFIX",
    "is_6to4",
]
