"""NAT64/DNS64 address translation (RFC 6052 / 6146 / 6147).

Where tunnels carry IPv6 *over* IPv4, NAT64 lets an IPv6-only client
reach IPv4-only content by *translating*: a DNS64 resolver synthesizes a
AAAA record for names that only have an A record, embedding the IPv4
address in the well-known prefix ``64:ff9b::/96`` (RFC 6052), and a
NAT64 gateway AS that announces the prefix rewrites each connection into
an IPv4 flow on the far side (RFC 6146).

The value types here are deliberately tiny — prefix math plus the
gateway descriptor — so the DNS layer (synthesis), the topology layer
(who announces the prefix, how far the translated IPv4 leg runs), and
the data plane (what the translation costs) can each import exactly what
they need without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from .addresses import Address, AddressFamily, IPv4Address, IPv6Address, Prefix

#: The NAT64 well-known prefix from RFC 6052.
NAT64_PREFIX = Prefix.parse("64:ff9b::/96")


def synthesize_aaaa(v4: IPv4Address) -> IPv6Address:
    """The DNS64-synthesized AAAA value for an A record (RFC 6052 §2.1)."""
    return IPv6Address(NAT64_PREFIX.network | v4.value)


def extract_ipv4(v6: IPv6Address) -> IPv4Address:
    """The IPv4 address embedded in a NAT64-mapped IPv6 address."""
    if not is_nat64_mapped(v6):
        raise ValueError(f"{v6} is not inside {NAT64_PREFIX}")
    return IPv4Address(int(v6) & 0xFFFFFFFF)


def is_nat64_mapped(address: Address) -> bool:
    """True for IPv6 addresses carved from the NAT64 well-known prefix."""
    if address.family is not AddressFamily.IPV6:
        return False
    return NAT64_PREFIX.contains(address)


@dataclass(frozen=True)
class Nat64Gateway:
    """A NAT64 translator deployed in ``gateway_asn``.

    The gateway announces ``64:ff9b::/96`` into the IPv6 routing system,
    so the *apparent* IPv6 AS path of a translated connection ends at the
    gateway; the IPv4 leg from the gateway to the real destination is
    invisible to BGP, exactly like a tunnel's encapsulated segment.
    """

    gateway_asn: int
    #: stateful translation is work per packet; the multiplicative
    #: throughput penalty of crossing the translator.
    translation_quality: float

    def __post_init__(self) -> None:
        if not 0.0 < self.translation_quality <= 1.0:
            raise ValueError(
                f"translation_quality must be in (0, 1], "
                f"got {self.translation_quality}"
            )
