"""IPv6-over-IPv4 transition tunnels.

In 2011 an AS without a native IPv6 uplink could still originate IPv6 by
tunnelling over IPv4 — automatically via 6to4 (RFC 3056) or through a
tunnel broker.  Tunnels matter to the paper twice:

* they make IPv6 AS paths look *shorter* than the forwarding path really
  is (the tunnelled segment collapses a multi-hop IPv4 detour into what
  BGP shows as one logical hop), which the paper invokes to explain the
  1-2 hop anomaly of Table 7; and
* they add encapsulation overhead, a mild throughput penalty.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from .addresses import AddressFamily, Prefix

#: The 6to4 well-known prefix from RFC 3056.
SIX_TO_FOUR_PREFIX = Prefix.parse("2002::/16")
#: The Teredo prefix from RFC 4380 (modelled for completeness).
TEREDO_PREFIX = Prefix.parse("2001::/32")


class TunnelKind(Enum):
    """Transition tunnel mechanisms the model distinguishes."""

    SIX_TO_FOUR = "6to4"
    BROKER = "broker"
    TEREDO = "teredo"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Tunnel:
    """A provisioned tunnel from ``client_asn`` to ``relay_asn``.

    ``hidden_hops`` is the number of IPv4 AS hops the encapsulated traffic
    actually crosses between client and relay; BGP sees the tunnel as a
    single logical adjacency, so the apparent AS path under-counts by
    ``hidden_hops - 1``.
    """

    client_asn: int
    relay_asn: int
    kind: TunnelKind
    hidden_hops: int

    def __post_init__(self) -> None:
        if self.hidden_hops < 1:
            raise ValueError("a tunnel must cross at least one IPv4 hop")
        if self.client_asn == self.relay_asn:
            raise ValueError("tunnel client and relay must differ")

    @property
    def extra_hops(self) -> int:
        """Hops hidden from the AS path by the encapsulation."""
        return self.hidden_hops - 1


def is_6to4(prefix: Prefix) -> bool:
    """True if ``prefix`` is carved from the 6to4 well-known prefix."""
    if prefix.family is not AddressFamily.IPV6:
        return False
    return SIX_TO_FOUR_PREFIX.contains(prefix)


def is_teredo(prefix: Prefix) -> bool:
    """True if ``prefix`` is carved from the Teredo prefix."""
    if prefix.family is not AddressFamily.IPV6:
        return False
    return TEREDO_PREFIX.contains(prefix)
